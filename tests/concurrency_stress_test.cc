// Thread-interleaving stress for the shared subsystems this PR annotated:
// the buffer manager (pin/unpin/evict/destroy churn with concurrent
// eviction-policy flips) and whole grouped-aggregation queries sharing one
// pool and the global metrics registry. The tests assert functional
// invariants, but their real job is to give TSan (and the capability
// analysis' runtime counterpart, lock contention) something to chew on:
// under -DSSAGG_SANITIZE=thread every race here is a hard failure.
//
// Kept deliberately small (seconds, not minutes) so the TSan CI leg stays
// fast; the iteration counts are tuned for ~1s per test without sanitizers.

#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/mutex.h"
#include "core/run_aggregation.h"
#include "execution/collectors.h"
#include "execution/range_source.h"
#include "observe/metrics.h"
#include "observe/progress.h"

namespace ssagg {
namespace {

class ConcurrencyStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "ssagg_conc_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
    (void)FileSystem::Default().CreateDirectories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

//===----------------------------------------------------------------------===//
// Pin/unpin/evict churn
//===----------------------------------------------------------------------===//

// N threads hammer one small pool: allocate, re-pin, verify contents,
// destroy — while another thread flips the eviction policy. The pool is
// sized so reservations constantly force evictions (and spills) of other
// threads' unpinned blocks, which exercises the try-lock eviction path,
// SpillBlock, and the policy-under-queue-lock fix concurrently.
TEST_F(ConcurrencyStressTest, PinEvictChurn) {
  constexpr idx_t kThreads = 4;
  constexpr idx_t kBlocksPerThread = 8;
  constexpr idx_t kRounds = 60;
  // Room for roughly half the working set: every round someone must evict.
  BufferManager bm(dir_, (kThreads * kBlocksPerThread / 2) * kPageSize);

  std::atomic<bool> stop{false};
  std::thread policy_flipper([&]() {
    const EvictionPolicy policies[] = {EvictionPolicy::kMixed,
                                       EvictionPolicy::kTemporaryFirst,
                                       EvictionPolicy::kPersistentFirst};
    idx_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      bm.SetEvictionPolicy(policies[i++ % 3]);
      std::this_thread::yield();
    }
  });

  std::atomic<idx_t> failures{0};
  auto worker = [&](idx_t tid) {
    std::vector<std::shared_ptr<BlockHandle>> handles(kBlocksPerThread);
    // Allocate the working set, stamping each page with an owner pattern.
    for (idx_t b = 0; b < kBlocksPerThread; b++) {
      auto buf = bm.Allocate(kPageSize, &handles[b]);
      if (!buf.ok()) {
        failures.fetch_add(1);
        return;
      }
      std::memset(buf.value().Ptr(), static_cast<int>(tid * 16 + b),
                  kPageSize);
    }
    for (idx_t round = 0; round < kRounds; round++) {
      idx_t b = (round * 7 + tid) % kBlocksPerThread;
      auto buf = bm.Pin(handles[b]);
      if (!buf.ok()) {
        failures.fetch_add(1);
        return;
      }
      // The page must round-trip through eviction+reload intact.
      if (buf.value().Ptr()[round % kPageSize] !=
          static_cast<data_t>(tid * 16 + b)) {
        failures.fetch_add(1);
        return;
      }
      if (round % 16 == 15) {
        // Recycle one block entirely.
        bm.DestroyBlock(handles[b]);
        auto fresh = bm.Allocate(kPageSize, &handles[b]);
        if (!fresh.ok()) {
          failures.fetch_add(1);
          return;
        }
        std::memset(fresh.value().Ptr(), static_cast<int>(tid * 16 + b),
                    kPageSize);
      }
    }
    for (auto &handle : handles) {
      bm.DestroyBlock(handle);
    }
  };

  std::vector<std::thread> threads;
  for (idx_t t = 0; t < kThreads; t++) {
    threads.emplace_back(worker, t);
  }
  for (auto &th : threads) {
    th.join();
  }
  stop.store(true);
  policy_flipper.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(bm.PinnedBufferCount(), 0u) << "leaked pins";
  EXPECT_EQ(bm.temp_files().UsedSlots(), 0u) << "leaked temp slots";
}

//===----------------------------------------------------------------------===//
// Concurrent queries on a shared pool + shared metrics registry
//===----------------------------------------------------------------------===//

// Several complete grouped aggregations run at once against one
// memory-limited BufferManager (so they contend for pages and evict each
// other's) while all recording into the global MetricsRegistry. Each query
// independently verifies its result, and concurrent metric reads must see
// monotonically consistent sums.
//
// Pool sizing: every phase-1 worker keeps one pinned append page per radix
// partition until its table is combined, so the pool must cover that pinned
// floor — kQueries * 2 workers * 2^radix_bits pages — or a fully
// overlapped schedule (guaranteed under TSan) legitimately reports
// OutOfMemory. radix_bits = 2 keeps the floor at 24 of 48 pages, leaving
// the rest to fight over.
TEST_F(ConcurrencyStressTest, ConcurrentAggregationsSharedPool) {
  constexpr idx_t kQueries = 3;
  constexpr idx_t kRows = 40000;
  constexpr idx_t kGroups = 512;
  BufferManager bm(dir_, 48 * kPageSize);

  // Live introspection handles, polled from a foreign thread while the
  // queries run: phase and row counts must only ever move forward.
  std::array<QueryProgress, kQueries> progress;

  std::atomic<bool> stop{false};
  std::thread metrics_reader([&]() {
    MetricsRegistry &registry = MetricsRegistry::Global();
    uint64_t last = 0;
    std::array<uint64_t, kQueries> last_rows{};
    std::array<uint8_t, kQueries> last_phase{};
    while (!stop.load(std::memory_order_relaxed)) {
      auto snapshot = registry.Snapshot();
      uint64_t rows = snapshot.count("exec.rows") ? snapshot["exec.rows"] : 0;
      // Counters are monotonic; a backwards step means a torn read.
      EXPECT_GE(rows, last);
      last = rows;
      for (idx_t q = 0; q < kQueries; q++) {
        QueryProgress::Snapshot snap = progress[q].Poll();
        EXPECT_GE(snap.rows_consumed, last_rows[q]);
        EXPECT_GE(static_cast<uint8_t>(snap.phase), last_phase[q]);
        last_rows[q] = snap.rows_consumed;
        last_phase[q] = static_cast<uint8_t>(snap.phase);
      }
      std::this_thread::yield();
    }
  });

  std::atomic<idx_t> failures{0};
  std::array<std::string, kQueries> errors;
  auto query = [&](idx_t qid) {
    RangeSource source(
        {LogicalTypeId::kInt64, LogicalTypeId::kInt64}, kRows,
        [](DataChunk &chunk, idx_t start, idx_t count) {
          for (idx_t i = 0; i < count; i++) {
            idx_t row = start + i;
            chunk.column(0).SetValue<int64_t>(
                i, static_cast<int64_t>(row % kGroups));
            chunk.column(1).SetValue<int64_t>(i, 1);
          }
          return Status::OK();
        });
    TaskExecutor executor(2);
    CountingCollector collector;
    std::vector<AggregateRequest> aggregates = {
        {AggregateKind::kSum, 1}, {AggregateKind::kCountStar, kInvalidIndex}};
    HashAggregateConfig config;
    config.radix_bits = 2;
    auto stats = RunGroupedAggregation(bm, source, {0}, aggregates, collector,
                                       executor, config, /*profile=*/nullptr,
                                       &progress[qid]);
    if (!stats.ok() || collector.TotalRows() != kGroups ||
        stats.value().unique_groups != kGroups) {
      failures.fetch_add(1);
      errors[qid] = !stats.ok() ? stats.status().ToString()
                                : "wrong result (rows=" +
                                      std::to_string(collector.TotalRows()) +
                                      ")";
    }
  };

  std::vector<std::thread> threads;
  for (idx_t q = 0; q < kQueries; q++) {
    threads.emplace_back(query, q);
  }
  for (auto &th : threads) {
    th.join();
  }
  stop.store(true);
  metrics_reader.join();

  EXPECT_EQ(failures.load(), 0u)
      << errors[0] << " | " << errors[1] << " | " << errors[2];
  EXPECT_EQ(bm.PinnedBufferCount(), 0u) << "leaked pins";
  EXPECT_EQ(bm.temp_files().UsedSlots(), 0u) << "leaked temp slots";
  for (idx_t q = 0; q < kQueries; q++) {
    QueryProgress::Snapshot snap = progress[q].Poll();
    EXPECT_EQ(snap.phase, QueryProgress::Phase::kDone);
    EXPECT_EQ(snap.rows_consumed, kRows);
  }
}

//===----------------------------------------------------------------------===//
// CondVar wiring
//===----------------------------------------------------------------------===//

// The annotated CondVar wrapper must deliver wakeups with the Mutex wrapper
// (condition_variable_any over our BasicLockable). A tiny bounded queue is
// the classic shape; GUARDED_BY only applies to members, hence the struct.
struct BoundedQueue {
  static constexpr idx_t kCapacity = 8;

  Mutex lock;
  CondVar not_full;
  CondVar not_empty;
  std::vector<idx_t> items SSAGG_GUARDED_BY(lock);
  bool done SSAGG_GUARDED_BY(lock) = false;

  void Push(idx_t value) {
    ScopedLock guard(lock);
    while (items.size() >= kCapacity) {
      not_full.Wait(lock);
    }
    items.push_back(value);
    not_empty.NotifyOne();
  }

  void Close() {
    ScopedLock guard(lock);
    done = true;
    not_empty.NotifyOne();
  }

  /// Drains everything available into `out`; false once closed and empty.
  bool Drain(std::vector<idx_t> &out) {
    ScopedLock guard(lock);
    while (items.empty() && !done) {
      not_empty.Wait(lock);
    }
    out.insert(out.end(), items.begin(), items.end());
    items.clear();
    not_full.NotifyAll();
    return !(done && items.empty());
  }
};

TEST_F(ConcurrencyStressTest, CondVarBoundedQueue) {
  constexpr idx_t kItems = 2000;
  BoundedQueue queue;

  uint64_t checksum = 0;
  idx_t consumed = 0;
  std::thread consumer([&]() {
    while (true) {
      std::vector<idx_t> batch;
      bool more = queue.Drain(batch);
      for (idx_t v : batch) {
        checksum += v;
        consumed++;
      }
      if (!more && batch.empty()) {
        break;
      }
    }
  });

  for (idx_t i = 0; i < kItems; i++) {
    queue.Push(i);
  }
  queue.Close();
  consumer.join();

  EXPECT_EQ(consumed, kItems);
  EXPECT_EQ(checksum, static_cast<uint64_t>(kItems) * (kItems - 1) / 2);
}

}  // namespace
}  // namespace ssagg
