// Graceful degradation demo: the same high-cardinality aggregation runs
// with progressively smaller memory limits. The operator code never
// changes — when intermediates stop fitting, the buffer manager spills
// individual pages to a temporary file and the query completes slightly
// slower instead of failing (the paper's central claim).
//
// For contrast, the same query also runs on an in-memory-only engine model
// (spilling disabled), which aborts at exactly the point where ours starts
// using the disk.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "ssagg/ssagg.h"

using namespace ssagg;  // NOLINT(build/namespaces)

namespace {

// A "user table" of 3M events with ~3M distinct session ids: worst-case
// aggregation where pre-aggregation cannot reduce anything.
constexpr idx_t kEvents = 3000000;

RangeSource MakeEvents() {
  std::vector<LogicalTypeId> types = {LogicalTypeId::kInt64,
                                      LogicalTypeId::kInt64,
                                      LogicalTypeId::kVarchar};
  return RangeSource(
      types, kEvents, [](DataChunk &chunk, idx_t start, idx_t count) {
        for (idx_t i = 0; i < count; i++) {
          idx_t row = start + i;
          chunk.column(0).SetValue<int64_t>(
              i, static_cast<int64_t>(HashUint64(row) % kEvents));
          chunk.column(1).SetValue<int64_t>(i,
                                            static_cast<int64_t>(row % 97));
          chunk.column(2).SetString(
              i, "client_" + std::to_string(row % 5000) + "_tag");
        }
        return Status::OK();
      });
}

}  // namespace

int main() {
  TaskExecutor executor(2);
  std::vector<idx_t> group_columns = {0};
  std::vector<AggregateRequest> aggregates = {
      {AggregateKind::kSum, 1}, {AggregateKind::kAnyValue, 2}};
  HashAggregateConfig config;
  config.phase1_capacity = 1ULL << 15;
  config.radix_bits = 5;

  std::printf("aggregating %llu events into ~%llu groups "
              "(intermediates ~ %d MiB)\n\n",
              static_cast<unsigned long long>(kEvents),
              static_cast<unsigned long long>(kEvents), 220);
  std::printf("%10s | %12s %10s %12s | %12s\n", "limit", "robust s",
              "spilled", "temp peak", "in-memory-only");
  for (idx_t limit_mb : {512, 256, 128, 96, 64}) {
    // Robust: spilling allowed. A QueryProgress handle makes the run
    // observable from outside: a poller thread shows a live status line
    // (phase + completion fraction) without touching the query threads.
    BufferManager bm("/tmp/ssagg_mla", limit_mb << 20);
    auto events = MakeEvents();
    CountingCollector sink;
    QueryProgress progress;
    std::atomic<bool> done{false};
    std::thread poller([&]() {
      while (!done.load(std::memory_order_relaxed)) {
        QueryProgress::Snapshot live = progress.Poll();
        std::fprintf(stderr, "\r%7llu MB | %-7s %3.0f%% spilled %llu MiB   ",
                     static_cast<unsigned long long>(limit_mb),
                     QueryProgress::PhaseName(live.phase),
                     live.Fraction() * 100.0,
                     static_cast<unsigned long long>(live.bytes_spilled >>
                                                     20));
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      std::fprintf(stderr, "\r%60s\r", "");
    });
    auto t0 = std::chrono::steady_clock::now();
    auto stats = RunGroupedAggregation(bm, events, group_columns, aggregates,
                                       sink, executor, config,
                                       /*profile=*/nullptr, &progress);
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    done.store(true);
    poller.join();
    auto snap = bm.Snapshot();

    // In-memory-only engine model: same engine, spilling forbidden.
    BufferManager bm2("/tmp/ssagg_mla", limit_mb << 20);
    auto events2 = MakeEvents();
    CountingCollector sink2;
    Status in_memory = RunInMemoryAggregation(
        bm2, events2, group_columns, aggregates, sink2, executor, config,
        nullptr);

    char robust_cell[32];
    if (stats.ok()) {
      std::snprintf(robust_cell, sizeof(robust_cell), "%.2f", seconds);
    } else {
      std::snprintf(robust_cell, sizeof(robust_cell), "%s",
                    stats.status().ToString().c_str());
    }
    char peak_cell[32];
    if (snap.temp_file_peak > 0) {
      std::snprintf(peak_cell, sizeof(peak_cell), "%llu MiB",
                    static_cast<unsigned long long>(snap.temp_file_peak >>
                                                    20));
    } else {
      std::snprintf(peak_cell, sizeof(peak_cell), "-");
    }
    std::printf("%7llu MB | %12s %10s %12s | %12s\n",
                static_cast<unsigned long long>(limit_mb), robust_cell,
                snap.temp_writes > 0 ? "yes" : "no", peak_cell,
                in_memory.ok() ? "completes" : "ABORTS");
  }
  std::printf("\nthe robust runtime degrades gradually as the limit "
              "shrinks; the in-memory-only\nengine falls off the cliff "
              "instead.\n");
  return 0;
}
