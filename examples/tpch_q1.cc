// TPC-H Q1: the paper's canonical LOW-cardinality aggregation ("A typical
// example is TPC-H query 1, which reduces the input to just four rows,
// regardless of the scale factor", Section V).
//
//   SELECT l_returnflag, l_linestatus,
//          SUM(l_quantity), SUM(l_extendedprice),
//          AVG(l_quantity), AVG(l_extendedprice), AVG(l_discount),
//          COUNT(*)
//   FROM lineitem
//   WHERE l_shipdate <= DATE '1998-09-02'   -- filter folded into the scan
//   GROUP BY l_returnflag, l_linestatus;
//
// Thread-local pre-aggregation reduces millions of rows to a handful per
// thread; combining them is trivial. The same operator that handles
// larger-than-memory high-cardinality aggregations runs this without any
// special casing.

#include <cstdio>

#include "ssagg/ssagg.h"

using namespace ssagg;        // NOLINT(build/namespaces)
namespace li = ssagg::tpch;   // lineitem generator

int main() {
  BufferManager bm("/tmp/ssagg_q1", 256ULL << 20);
  TaskExecutor executor(4);
  li::LineitemGenerator gen(/*scale_factor=*/8);  // 480k rows (mini scale)

  std::vector<idx_t> columns = {li::kReturnFlag,     li::kLineStatus,
                                li::kQuantity,       li::kExtendedPrice,
                                li::kDiscount,       li::kShipDate};
  auto types = li::LineitemGenerator::ColumnTypes(columns);
  // A filtering source: generates lineitem rows and keeps those shipped on
  // or before 1998-09-02 (projection + filter fused into the scan).
  constexpr int32_t kCutoff = 8036 + 2436;  // 1998-09-02 as days
  RangeSource source(
      types, gen.RowCount(),
      [&gen, &columns, types](DataChunk &chunk, idx_t start, idx_t count) {
        DataChunk raw(types);
        SSAGG_RETURN_NOT_OK(gen.FillChunk(raw, columns, start, count));
        idx_t kept = 0;
        for (idx_t i = 0; i < count; i++) {
          if (raw.column(5).GetValue<int32_t>(i) > kCutoff) {
            continue;
          }
          chunk.column(0).SetString(kept, raw.column(0).GetString(i).View());
          chunk.column(1).SetString(kept, raw.column(1).GetString(i).View());
          chunk.column(2).SetValue<int32_t>(
              kept, raw.column(2).GetValue<int32_t>(i));
          chunk.column(3).SetValue<double>(
              kept, raw.column(3).GetValue<double>(i));
          chunk.column(4).SetValue<double>(
              kept, raw.column(4).GetValue<double>(i));
          chunk.column(5).SetValue<int32_t>(
              kept, raw.column(5).GetValue<int32_t>(i));
          kept++;
        }
        chunk.SetCount(kept);
        return Status::OK();
      });

  MaterializedCollector result;
  auto stats = RunGroupedAggregation(
      bm, source, /*group columns=*/{0, 1},
      {{AggregateKind::kSum, 2},
       {AggregateKind::kSum, 3},
       {AggregateKind::kAvg, 2},
       {AggregateKind::kAvg, 3},
       {AggregateKind::kAvg, 4},
       {AggregateKind::kCountStar, kInvalidIndex}},
      result, executor);
  if (!stats.ok()) {
    SSAGG_LOG_ERROR("Q1 failed: %s", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("%-4s %-4s %14s %18s %10s %14s %8s %10s\n", "rf", "ls",
              "sum_qty", "sum_base_price", "avg_qty", "avg_price",
              "avg_disc", "count");
  for (const auto &row : result.rows()) {
    std::printf("%-4s %-4s %14lld %18.2f %10.2f %14.2f %8.4f %10lld\n",
                row[0].GetString().c_str(), row[1].GetString().c_str(),
                static_cast<long long>(row[2].GetInt64()),
                row[3].GetDouble(), row[4].GetDouble(), row[5].GetDouble(),
                row[6].GetDouble(),
                static_cast<long long>(row[7].GetInt64()));
  }
  std::printf("\n%llu input rows -> %llu result rows; thread-local "
              "pre-aggregation materialized only %llu rows total\n",
              static_cast<unsigned long long>(gen.RowCount()),
              static_cast<unsigned long long>(result.RowCount()),
              static_cast<unsigned long long>(
                  stats.value().materialized_rows));
  return 0;
}
