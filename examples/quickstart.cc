// Quickstart: group and aggregate an in-memory data set through ssagg's
// public API.
//
//   SELECT city, COUNT(*), SUM(amount), AVG(amount), ANY_VALUE(note)
//   FROM orders GROUP BY city;
//
// Everything goes through the unified buffer manager: give it a tiny
// memory limit (see examples/memory_limited_analytics.cc) and the same
// code transparently spills to disk.

#include <cstdio>

#include "ssagg/ssagg.h"

using namespace ssagg;  // NOLINT(build/namespaces)

int main() {
  // 1. A buffer manager: one memory pool for everything, spilling to
  //    temporary files in the given directory when the limit is exceeded.
  BufferManager buffer_manager("/tmp/ssagg_quickstart",
                               /*memory_limit=*/256ULL << 20);

  // 2. A data source. RangeSource materializes rows on demand from a
  //    row-number-deterministic filler; real applications can also scan a
  //    persistent DataTable (see examples/persistent_table.cc).
  const char *cities[5] = {"Amsterdam", "Berlin", "Paris", "Lisbon", "Oslo"};
  std::vector<LogicalTypeId> types = {LogicalTypeId::kVarchar,
                                      LogicalTypeId::kDouble,
                                      LogicalTypeId::kVarchar};
  constexpr idx_t kOrders = 1000000;
  RangeSource orders(types, kOrders,
                     [&](DataChunk &chunk, idx_t start, idx_t count) {
                       for (idx_t i = 0; i < count; i++) {
                         idx_t row = start + i;
                         chunk.column(0).SetString(i, cities[row % 5]);
                         chunk.column(1).SetValue<double>(
                             i, static_cast<double>(row % 500) + 0.99);
                         chunk.column(2).SetString(
                             i, "order note #" + std::to_string(row));
                       }
                       return Status::OK();
                     });

  // 3. The query: GROUP BY column 0 with four aggregates.
  std::vector<idx_t> group_columns = {0};
  std::vector<AggregateRequest> aggregates = {
      {AggregateKind::kCountStar, kInvalidIndex},
      {AggregateKind::kSum, 1},
      {AggregateKind::kAvg, 1},
      {AggregateKind::kAnyValue, 2},
  };

  // 4. Run it on 4 worker threads and collect the (small) result.
  TaskExecutor executor(4);
  MaterializedCollector result;
  auto stats = RunGroupedAggregation(buffer_manager, orders, group_columns,
                                     aggregates, result, executor);
  if (!stats.ok()) {
    SSAGG_LOG_ERROR("query failed: %s", stats.status().ToString().c_str());
    return 1;
  }

  std::printf("%-12s %10s %14s %10s  %s\n", "city", "orders", "revenue",
              "avg", "any note");
  for (const auto &row : result.rows()) {
    std::printf("%-12s %10lld %14.2f %10.2f  %s\n",
                row[0].GetString().c_str(),
                static_cast<long long>(row[1].GetInt64()),
                row[2].GetDouble(), row[3].GetDouble(),
                row[4].GetString().c_str());
  }
  std::printf("\naggregated %llu rows into %llu groups in %.3f s "
              "(phase 1 %.3f s, phase 2 %.3f s)\n",
              static_cast<unsigned long long>(kOrders),
              static_cast<unsigned long long>(result.RowCount()),
              stats.value().phase1_seconds + stats.value().phase2_seconds,
              stats.value().phase1_seconds, stats.value().phase2_seconds);
  return 0;
}
