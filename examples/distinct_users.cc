// High-cardinality DISTINCT demo, one of the paper's motivating workloads
// ("eliminating duplicate rows in machine learning data sets, queries with
// DISTINCT, or grouping by unique customer in a large customer base").
//
//   SELECT DISTINCT user_id, device FROM clicks;   -- via GROUP BY
//
// The deduplicated output is streamed to the next "pipeline" as partitions
// finish; here an OffsetCollector mimics the paper's benchmark query shape
// (OFFSET N-1) by discarding all but the last row, so the full distinct
// set is computed but almost nothing is materialized at the client.

#include <cstdio>

#include "ssagg/ssagg.h"

using namespace ssagg;  // NOLINT(build/namespaces)

int main() {
  BufferManager bm("/tmp/ssagg_distinct", 128ULL << 20);
  TaskExecutor executor(4);

  // 8M click events from ~2.5M distinct (user, device) pairs.
  constexpr idx_t kClicks = 8000000;
  constexpr idx_t kUsers = 2000000;
  const char *devices[3] = {"mobile", "desktop", "tablet"};
  std::vector<LogicalTypeId> types = {LogicalTypeId::kInt64,
                                      LogicalTypeId::kVarchar};
  RangeSource clicks(types, kClicks,
                     [&](DataChunk &chunk, idx_t start, idx_t count) {
                       for (idx_t i = 0; i < count; i++) {
                         uint64_t r = HashUint64(start + i);
                         chunk.column(0).SetValue<int64_t>(
                             i, static_cast<int64_t>(r % kUsers));
                         chunk.column(1).SetString(i,
                                                   devices[(r >> 32) % 3]);
                       }
                       return Status::OK();
                     });

  // DISTINCT = GROUP BY with no aggregates (the paper's "thin" variant).
  HashAggregateConfig config;
  config.phase1_capacity = 1ULL << 15;
  config.radix_bits = 5;
  OffsetCollector collector(/*offset=*/0);
  auto t0 = std::chrono::steady_clock::now();
  auto stats = RunGroupedAggregation(bm, clicks, /*group columns=*/{0, 1},
                                     /*aggregates=*/{}, collector, executor,
                                     config);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!stats.ok()) {
    SSAGG_LOG_ERROR("failed: %s", stats.status().ToString().c_str());
    return 1;
  }
  auto snap = bm.Snapshot();
  std::printf("distinct (user, device) pairs: %llu  (from %llu clicks, "
              "%.2f s, %.1f M rows/s)\n",
              static_cast<unsigned long long>(collector.TotalRows()),
              static_cast<unsigned long long>(kClicks), seconds,
              kClicks / seconds / 1e6);
  std::printf("memory limit 128 MiB; intermediates spilled: %s "
              "(peak temp file %.1f MiB)\n",
              snap.temp_writes > 0 ? "yes" : "no",
              snap.temp_file_peak / 1048576.0);
  std::printf("pre-aggregation materialized %llu rows for %llu unique "
              "groups (dup factor %.2f)\n",
              static_cast<unsigned long long>(
                  stats.value().materialized_rows),
              static_cast<unsigned long long>(stats.value().unique_groups),
              static_cast<double>(stats.value().materialized_rows) /
                  stats.value().unique_groups);
  return 0;
}
