// Live query introspection demo and metrics dump entry point.
//
// Runs a deliberately memory-starved (spilling) aggregation while a
// separate thread polls its QueryProgress handle, printing a live status
// line: phase, rows consumed, completion fraction, the planner's group
// estimate, spill volume and the p99 spill-write latency — all without
// touching the query threads (the handle is a few relaxed atomics plus a
// registry delta).
//
// Afterwards it prints the process-wide MetricsRegistry in Prometheus text
// exposition format (what a /metrics endpoint would serve) and, when
// SSAGG_FLIGHT_DUMP is set, writes a flight-recorder dump of the query's
// last trace events.
//
// Usage:
//   ssagg_stat                         # live progress + Prometheus dump
//   SSAGG_FLIGHT_DUMP=/tmp ssagg_stat  # ... plus a flight dump in /tmp

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "ssagg/ssagg.h"

using namespace ssagg;  // NOLINT(build/namespaces)

namespace {

constexpr idx_t kRows = 1500000;

RangeSource MakeSource() {
  return RangeSource(
      {LogicalTypeId::kInt64, LogicalTypeId::kInt64}, kRows,
      [](DataChunk &chunk, idx_t start, idx_t count) {
        for (idx_t i = 0; i < count; i++) {
          auto row = static_cast<int64_t>(start + i);
          chunk.column(0).SetValue<int64_t>(
              i, static_cast<int64_t>(HashUint64(row) % kRows));
          chunk.column(1).SetValue<int64_t>(i, row);
        }
        return Status::OK();
      });
}

void PrintStatusLine(const QueryProgress::Snapshot &snap) {
  uint64_t p99_spill_us = 0;
  auto it = snap.histograms.find("io.spill_write_latency_ns");
  if (it != snap.histograms.end()) {
    p99_spill_us = it->second.Percentile(0.99) / 1000;
  }
  std::printf("\r[%-7s] %3.0f%%  rows %9llu/%llu  D-hat %8llu  "
              "spilled %6llu MiB  spill p99 %6llu us   ",
              QueryProgress::PhaseName(snap.phase), snap.Fraction() * 100.0,
              static_cast<unsigned long long>(snap.rows_consumed),
              static_cast<unsigned long long>(snap.estimated_total_rows),
              static_cast<unsigned long long>(snap.estimated_groups),
              static_cast<unsigned long long>(snap.bytes_spilled >> 20),
              static_cast<unsigned long long>(p99_spill_us));
  std::fflush(stdout);
}

}  // namespace

int main() {
  BufferManager bm("/tmp/ssagg_stat", 64ULL << 20);
  TaskExecutor executor(2);
  auto source = MakeSource();
  CountingCollector sink;
  HashAggregateConfig config;
  config.phase1_capacity = 1ULL << 15;
  config.radix_bits = 5;

  QueryProgress progress;
  std::atomic<bool> done{false};
  std::thread poller([&]() {
    while (!done.load(std::memory_order_relaxed)) {
      PrintStatusLine(progress.Poll());
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });

  auto stats = RunGroupedAggregation(bm, source, {0},
                                     {{AggregateKind::kSum, 1}}, sink,
                                     executor, config, nullptr, &progress);
  done.store(true);
  poller.join();
  PrintStatusLine(progress.Poll());
  std::printf("\n\n");
  if (!stats.ok()) {
    SSAGG_LOG_ERROR("query failed: %s", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("groups: %llu  (phase1 %.2fs, phase2 %.2fs)\n\n",
              static_cast<unsigned long long>(stats.value().unique_groups),
              stats.value().phase1_seconds, stats.value().phase2_seconds);

  std::printf("---- Prometheus exposition (process lifetime) ----\n%s",
              MetricsRegistry::Global().RenderPrometheus().c_str());

  FlightRecorder &flight = FlightRecorder::Global();
  if (!flight.dump_directory().empty()) {
    std::string path = flight.DumpAnomaly("ssagg_stat");
    std::printf("\nflight recording (%llu events): %s\n",
                static_cast<unsigned long long>(flight.EventCount()),
                path.empty() ? "(dump cap reached)" : path.c_str());
  } else {
    std::printf("\n(set SSAGG_FLIGHT_DUMP=<dir> to keep a flight-recorder "
                "dump of the last trace events)\n");
  }
  return 0;
}
