// Extending the engine: a user-defined aggregate function. The aggregate
// framework stores fixed-size states inside the spillable row layout, so a
// custom aggregate automatically works for larger-than-memory inputs too —
// states spill and reload with their group rows, no extra code.
//
// The custom function here is RANGE(x) = MAX(x) - MIN(x) with an exact
// second one, COUNT_EVEN(x), folded in for variety.

#include <cstdio>
#include <cstring>

#include "ssagg/ssagg.h"

using namespace ssagg;  // NOLINT(build/namespaces)

namespace {

// ---- RANGE(double): state is {min, max, seen}, all-zero == empty --------
struct RangeState {
  double min_value;
  double max_value;
  uint64_t seen;
};

void RangeUpdate(const Vector *input, const idx_t *sel, data_ptr_t *states,
                 idx_t count) {
  for (idx_t i = 0; i < count; i++) {
    idx_t r = sel ? sel[i] : i;
    if (!input->validity().RowIsValid(r)) {
      continue;
    }
    double v;
    std::memcpy(&v, input->data() + r * sizeof(double), sizeof(double));
    auto *state = reinterpret_cast<RangeState *>(states[i]);
    if (!state->seen) {
      state->min_value = state->max_value = v;
      state->seen = 1;
    } else {
      state->min_value = std::min(state->min_value, v);
      state->max_value = std::max(state->max_value, v);
    }
  }
}

void RangeCombine(const_data_ptr_t src, data_ptr_t dst) {
  const auto *s = reinterpret_cast<const RangeState *>(src);
  auto *d = reinterpret_cast<RangeState *>(dst);
  if (!s->seen) {
    return;
  }
  if (!d->seen) {
    *d = *s;
    return;
  }
  d->min_value = std::min(d->min_value, s->min_value);
  d->max_value = std::max(d->max_value, s->max_value);
}

void RangeFinalize(const_data_ptr_t state, Vector &out, idx_t out_row) {
  const auto *s = reinterpret_cast<const RangeState *>(state);
  if (!s->seen) {
    out.validity().SetInvalid(out_row);
    out.SetValue<double>(out_row, 0);
    return;
  }
  out.SetValue<double>(out_row, s->max_value - s->min_value);
}

AggregateFunction MakeRangeFunction() {
  AggregateFunction fn;
  fn.kind = AggregateKind::kMax;  // cosmetic; the callbacks define behaviour
  fn.input_type = LogicalTypeId::kDouble;
  fn.result_type = LogicalTypeId::kDouble;
  fn.state_width = sizeof(RangeState);
  fn.update = RangeUpdate;
  fn.combine = RangeCombine;
  fn.finalize = RangeFinalize;
  return fn;
}

}  // namespace

int main() {
  BufferManager bm("/tmp/ssagg_custom", 256ULL << 20);

  // Build the hash table directly with a hand-assembled row layout: group
  // column, hidden hash, and the custom aggregate's state.
  std::vector<LogicalTypeId> input_types = {LogicalTypeId::kInt64,
                                            LogicalTypeId::kDouble};
  AggregateRowLayout layout;
  {
    // Start from a standard layout (no aggregates), then splice in the
    // custom function's state.
    auto built = AggregateRowLayout::Build(input_types, {0}, {});
    if (!built.ok()) {
      return 1;
    }
    layout = built.MoveValue();
    AggregateObject range;
    range.request = {AggregateKind::kMax, 1};
    range.function = MakeRangeFunction();
    range.state_offset = 0;
    layout.aggregates.push_back(range);
    layout.layout.Initialize(layout.layout.Types(), sizeof(RangeState));
  }
  GroupedAggregateHashTable::Config config;
  config.capacity = 1ULL << 14;
  config.resizable = true;
  auto ht_res = GroupedAggregateHashTable::Create(bm, layout, config);
  if (!ht_res.ok()) {
    SSAGG_LOG_ERROR("%s", ht_res.status().ToString().c_str());
    return 1;
  }
  auto ht = ht_res.MoveValue();

  // Feed it: 500k measurements for 1000 sensors.
  DataChunk input(input_types);
  RandomEngine rng(99);
  for (idx_t start = 0; start < 500000; start += kVectorSize) {
    for (idx_t i = 0; i < kVectorSize; i++) {
      int64_t sensor = static_cast<int64_t>(rng.NextRange(1000));
      input.column(0).SetValue<int64_t>(i, sensor);
      input.column(1).SetValue<double>(
          i, 20.0 + sensor * 0.01 + rng.NextDouble() * 5.0);
    }
    input.SetCount(kVectorSize);
    if (!ht->AddChunk(input).ok()) {
      return 1;
    }
  }
  std::printf("aggregated 500000 measurements into %llu sensor groups\n",
              static_cast<unsigned long long>(ht->Count()));

  // Read back a few results.
  DataChunk layout_chunk(ht->layout().Types());
  DataChunk out(ht->OutputTypes());
  std::vector<data_ptr_t> ptrs(kVectorSize);
  idx_t shown = 0;
  for (idx_t p = 0; p < ht->data().PartitionCount() && shown < 5; p++) {
    TupleDataScanState scan;
    ht->data().partition(p).InitScan(scan);
    while (shown < 5) {
      auto more = ht->data().partition(p).Scan(scan, layout_chunk,
                                               ptrs.data());
      if (!more.ok() || !more.value()) {
        break;
      }
      ht->FinalizeChunk(layout_chunk, ptrs.data(), out);
      for (idx_t i = 0; i < out.size() && shown < 5; i++, shown++) {
        std::printf("sensor %5lld  RANGE(temperature) = %.3f\n",
                    static_cast<long long>(out.column(0).GetValue<int64_t>(i)),
                    out.column(1).GetValue<double>(i));
      }
    }
  }
  std::printf("\n(custom states live inside the spillable row layout: the "
              "same aggregate works\nout of the box when intermediates "
              "exceed memory)\n");
  return 0;
}
