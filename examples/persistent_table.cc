// Persistent storage demo: write a table to a database file with
// lightweight compression, then aggregate it through the unified buffer
// manager. The scan's persistent pages and the aggregation's temporary
// pages share one pool — loading the table can evict intermediates and
// vice versa, which is exactly the cooperation Section III argues for.

#include <cstdio>

#include "ssagg/ssagg.h"

using namespace ssagg;  // NOLINT(build/namespaces)

int main() {
  const std::string dir = "/tmp/ssagg_persistent";
  (void)FileSystem::Default().CreateDirectories(dir);

  // 1. Create a database file and a table in it.
  auto block_mgr_res = FileBlockManager::Create(dir + "/shop.db");
  if (!block_mgr_res.ok()) {
    SSAGG_LOG_ERROR("%s", block_mgr_res.status().ToString().c_str());
    return 1;
  }
  auto block_mgr = block_mgr_res.MoveValue();
  Schema schema = {{"product_id", LogicalTypeId::kInt64},
                   {"category", LogicalTypeId::kVarchar},
                   {"units", LogicalTypeId::kInt32},
                   {"price", LogicalTypeId::kDouble}};
  DataTable sales(*block_mgr, schema);

  // 2. Bulk-load 2M rows. Column segments are compressed with
  //    frame-of-reference bit-packing / RLE automatically.
  const char *categories[6] = {"garden", "kitchen",    "electronics",
                               "toys",   "stationery", "outdoor"};
  DataChunk chunk({LogicalTypeId::kInt64, LogicalTypeId::kVarchar,
                   LogicalTypeId::kInt32, LogicalTypeId::kDouble});
  constexpr idx_t kRows = 2000000;
  RandomEngine rng(2024);
  for (idx_t start = 0; start < kRows; start += kVectorSize) {
    idx_t n = std::min(kVectorSize, kRows - start);
    for (idx_t i = 0; i < n; i++) {
      chunk.column(0).SetValue<int64_t>(
          i, static_cast<int64_t>(rng.NextRange(50000)));
      chunk.column(1).SetString(i, categories[rng.NextRange(6)]);
      chunk.column(2).SetValue<int32_t>(
          i, static_cast<int32_t>(rng.NextRange(10) + 1));
      chunk.column(3).SetValue<double>(i, 1.0 + rng.NextDouble() * 99.0);
    }
    chunk.SetCount(n);
    if (!sales.Append(chunk).ok()) {
      return 1;
    }
    chunk.Reset();
  }
  if (!sales.FinalizeAppend().ok()) {
    return 1;
  }
  idx_t raw_bytes = kRows * (8 + 16 + 4 + 8);
  std::printf("table: %llu rows in %llu blocks, %.1f MiB compressed "
              "(%.1fx vs %.1f MiB raw)\n\n",
              static_cast<unsigned long long>(sales.RowCount()),
              static_cast<unsigned long long>(sales.BlockCount()),
              sales.CompressedBytes() / 1048576.0,
              static_cast<double>(raw_bytes) / sales.CompressedBytes(),
              raw_bytes / 1048576.0);

  // 3. Aggregate it with a pool much smaller than table + intermediates.
  BufferManager bm(dir, 64ULL << 20);
  TaskExecutor executor(4);
  auto scan = sales.MakeScanSource(bm, {1, 2, 3});  // category, units, price
  MaterializedCollector result;
  HashAggregateConfig config;
  config.radix_bits = 3;
  auto stats = RunGroupedAggregation(
      bm, *scan, /*group columns=*/{0},
      {{AggregateKind::kSum, 1}, {AggregateKind::kAvg, 2},
       {AggregateKind::kCountStar, kInvalidIndex}},
      result, executor, config);
  if (!stats.ok()) {
    SSAGG_LOG_ERROR("query failed: %s", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("%-12s %12s %10s %10s\n", "category", "units", "avg price",
              "rows");
  for (const auto &row : result.rows()) {
    std::printf("%-12s %12lld %10.2f %10lld\n", row[0].GetString().c_str(),
                static_cast<long long>(row[1].GetInt64()),
                row[2].GetDouble(),
                static_cast<long long>(row[3].GetInt64()));
  }
  auto snap = bm.Snapshot();
  std::printf("\npersistent pages evicted: %llu (re-read from shop.db for "
              "free), temporary spills: %llu\n",
              static_cast<unsigned long long>(snap.evicted_persistent_count),
              static_cast<unsigned long long>(snap.evicted_temporary_count));
  sales.ReleaseHandleCache(bm);
  return 0;
}
