// Composing the external-capable operators: a star-schema query that joins
// a fact table to a dimension and aggregates the result —
//
//   SELECT d.region, COUNT(*), SUM(f.amount)
//   FROM fact f JOIN dim d ON f.dim_id = d.id
//   GROUP BY d.region;
//
// The join's output chunks stream straight into the aggregation sink (the
// "fully aggregated partitions become morsels of the next pipeline" idea,
// applied across operators). Both operators share one buffer manager, so
// their combined intermediates respect a single memory limit and spill
// cooperatively.

#include <cstdio>

#include "ssagg/ssagg.h"

using namespace ssagg;  // NOLINT(build/namespaces)

int main() {
  BufferManager bm("/tmp/ssagg_star", 192ULL << 20);
  TaskExecutor executor(4);

  constexpr idx_t kDims = 100000;
  constexpr idx_t kFacts = 2000000;
  const char *regions[4] = {"north", "south", "east", "west"};

  // dim(id INT64, region VARCHAR)
  RangeSource dim({LogicalTypeId::kInt64, LogicalTypeId::kVarchar}, kDims,
                  [&](DataChunk &chunk, idx_t start, idx_t count) {
                    for (idx_t i = 0; i < count; i++) {
                      idx_t row = start + i;
                      chunk.column(0).SetValue<int64_t>(
                          i, static_cast<int64_t>(row));
                      chunk.column(1).SetString(i,
                                                regions[HashUint64(row) % 4]);
                    }
                    return Status::OK();
                  });
  // fact(dim_id INT64, amount INT64)
  RangeSource fact({LogicalTypeId::kInt64, LogicalTypeId::kInt64}, kFacts,
                   [&](DataChunk &chunk, idx_t start, idx_t count) {
                     for (idx_t i = 0; i < count; i++) {
                       idx_t row = start + i;
                       chunk.column(0).SetValue<int64_t>(
                           i, static_cast<int64_t>(HashUint64(row * 3 + 1) %
                                                   kDims));
                       chunk.column(1).SetValue<int64_t>(
                           i, static_cast<int64_t>(row % 1000));
                     }
                     return Status::OK();
                   });

  auto join = PhysicalHashJoin::Create(
                  bm, /*build=*/{LogicalTypeId::kInt64,
                                 LogicalTypeId::kVarchar},
                  {0},
                  /*probe=*/{LogicalTypeId::kInt64, LogicalTypeId::kInt64},
                  {0})
                  .MoveValue();
  Status st = executor.RunPipeline(dim, join->build_sink());
  if (st.ok()) {
    st = executor.RunPipeline(fact, join->probe_sink());
  }
  if (!st.ok()) {
    SSAGG_LOG_ERROR("join build failed: %s", st.ToString().c_str());
    return 1;
  }

  // Join output: [dim_id, amount, id, region] -> GROUP BY region.
  auto agg = PhysicalHashAggregate::Create(
                 bm, join->OutputTypes(), /*group columns=*/{3},
                 {{AggregateKind::kCountStar, kInvalidIndex},
                  {AggregateKind::kSum, 1}})
                 .MoveValue();
  // The join's result chunks flow directly into the aggregation sink.
  st = join->EmitResults(*agg, executor);
  if (!st.ok()) {
    SSAGG_LOG_ERROR("join failed: %s", st.ToString().c_str());
    return 1;
  }
  MaterializedCollector result;
  st = agg->EmitResults(result, executor);
  if (!st.ok()) {
    SSAGG_LOG_ERROR("aggregation failed: %s", st.ToString().c_str());
    return 1;
  }

  std::printf("%-8s %12s %16s\n", "region", "orders", "revenue");
  int64_t total = 0;
  for (const auto &row : result.rows()) {
    std::printf("%-8s %12lld %16lld\n", row[0].GetString().c_str(),
                static_cast<long long>(row[1].GetInt64()),
                static_cast<long long>(row[2].GetInt64()));
    total += row[1].GetInt64();
  }
  std::printf("\njoined %lld fact rows through a %d-region dimension under "
              "one %s pool\n",
              static_cast<long long>(total), 4, "192 MiB");
  return total == static_cast<int64_t>(kFacts) ? 0 : 1;
}
