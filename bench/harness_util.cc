#include "harness_util.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/file_system.h"

namespace ssagg {
namespace bench {

namespace {
idx_t EnvIdx(const char *name, idx_t fallback) {
  const char *value = std::getenv(name);
  return value ? static_cast<idx_t>(std::strtoull(value, nullptr, 10))
               : fallback;
}
double EnvDouble(const char *name, double fallback) {
  const char *value = std::getenv(name);
  return value ? std::strtod(value, nullptr) : fallback;
}
}  // namespace

BenchOptions BenchOptions::FromEnv() {
  BenchOptions options;
  options.threads = EnvIdx("SSAGG_BENCH_THREADS", options.threads);
  options.timeout_seconds =
      EnvDouble("SSAGG_BENCH_TIMEOUT", options.timeout_seconds);
  options.memory_limit =
      EnvIdx("SSAGG_BENCH_MEMORY_MB", options.memory_limit >> 20) << 20;
  options.scale_cap = EnvIdx("SSAGG_BENCH_SF_CAP", options.scale_cap);
  options.runs = EnvIdx("SSAGG_BENCH_RUNS", options.runs);
  if (const char *dir = std::getenv("SSAGG_BENCH_TMPDIR")) {
    options.temp_dir = dir;
  }
  options.radix_bits = EnvIdx("SSAGG_BENCH_RADIX_BITS", options.radix_bits);
  options.phase1_capacity =
      EnvIdx("SSAGG_BENCH_PHASE1_CAPACITY", options.phase1_capacity);
  return options;
}

Json BenchOptions::ToJson() const {
  Json object = Json::Object();
  object.Set("threads", Json(static_cast<uint64_t>(threads)));
  object.Set("timeout_seconds", Json(timeout_seconds));
  object.Set("memory_limit", Json(static_cast<uint64_t>(memory_limit)));
  object.Set("scale_cap", Json(static_cast<uint64_t>(scale_cap)));
  object.Set("runs", Json(static_cast<uint64_t>(runs)));
  object.Set("temp_dir", Json(temp_dir));
  object.Set("radix_bits", Json(static_cast<uint64_t>(radix_bits)));
  object.Set("phase1_capacity",
             Json(static_cast<uint64_t>(phase1_capacity)));
  return object;
}

const char *SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kRobust:
      return "Robust (ours)";
    case SystemKind::kClickHouse:
      return "ClickHouse-model";
    case SystemKind::kHyPer:
      return "HyPer-model";
    case SystemKind::kUmbra:
      return "Umbra-model";
  }
  return "?";
}

const char *SystemShortName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kRobust:
      return "Du";
    case SystemKind::kClickHouse:
      return "Cl";
    case SystemKind::kHyPer:
      return "Hy";
    case SystemKind::kUmbra:
      return "Um";
  }
  return "?";
}

const std::vector<SystemKind> &AllSystems() {
  static const std::vector<SystemKind> *systems = new std::vector<SystemKind>{
      SystemKind::kRobust, SystemKind::kClickHouse, SystemKind::kHyPer,
      SystemKind::kUmbra};
  return *systems;
}

std::string QueryResult::Cell() const {
  if (tag != ' ') {
    return std::string(1, tag);
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), seconds < 10 ? "%.2f" : "%.1f",
                seconds);
  return buffer;
}

Json SnapshotJson(const BufferManagerSnapshot &snapshot) {
  Json object = Json::Object();
  auto set = [&](const char *key, idx_t value) {
    object.Set(key, Json(static_cast<uint64_t>(value)));
  };
  set("memory_used", snapshot.memory_used);
  set("memory_limit", snapshot.memory_limit);
  set("persistent_bytes_in_memory", snapshot.persistent_bytes_in_memory);
  set("temporary_bytes_in_memory", snapshot.temporary_bytes_in_memory);
  set("non_paged_bytes", snapshot.non_paged_bytes);
  set("temp_file_size", snapshot.temp_file_size);
  set("temp_file_peak", snapshot.temp_file_peak);
  set("evicted_persistent_count", snapshot.evicted_persistent_count);
  set("evicted_temporary_count", snapshot.evicted_temporary_count);
  set("reused_buffers", snapshot.reused_buffers);
  set("temp_writes", snapshot.temp_writes);
  set("temp_reads", snapshot.temp_reads);
  set("spill_bytes_written", snapshot.spill_bytes_written);
  set("spill_bytes_read", snapshot.spill_bytes_read);
  set("spill_raw_bytes", snapshot.spill_raw_bytes);
  set("spill_coalesced_writes", snapshot.spill_coalesced_writes);
  set("spill_coalesced_pages", snapshot.spill_coalesced_pages);
  set("prefetch_issued", snapshot.prefetch_issued);
  set("prefetch_completed", snapshot.prefetch_completed);
  object.Set("spill_write_seconds", Json(snapshot.spill_write_seconds));
  object.Set("spill_read_seconds", Json(snapshot.spill_read_seconds));
  set("spill_slot_reuses", snapshot.spill_slot_reuses);
  set("spill_variable_files", snapshot.spill_variable_files);
  set("oom_rejections", snapshot.oom_rejections);
  return object;
}

Json QueryResult::ToJson() const {
  Json object = Json::Object();
  object.Set("seconds", Json(seconds));
  object.Set("tag", Json(std::string(1, tag)));
  object.Set("result_rows", Json(static_cast<uint64_t>(result_rows)));
  if (skipped) {
    object.Set("skipped", Json(true));
  }
  object.Set("snapshot", SnapshotJson(snapshot));
  object.Set("profile", profile.ToJson());
  return object;
}

std::string WriteResultsJson(const std::string &bench_name,
                             const BenchOptions &options, Json payload) {
  Json document = Json::Object();
  document.Set("bench", Json(bench_name));
  document.Set("options", options.ToJson());
  for (const auto &member : payload.members()) {
    document.Set(member.first, member.second);
  }
  Status status = FileSystem::Default().CreateDirectories("results");
  std::string path = "results/" + bench_name + ".json";
  std::FILE *f = status.ok() ? std::fopen(path.c_str(), "w") : nullptr;
  if (f == nullptr) {
    SSAGG_LOG_ERROR("cannot write %s", path.c_str());
    return "";
  }
  std::string text = document.Dump(2);
  text.push_back('\n');
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return path;
}

namespace {

char TagFromStatus(const Status &status) {
  if (status.ok()) {
    return ' ';
  }
  if (status.IsTimeout()) {
    return 'T';
  }
  if (status.IsAborted() || status.IsOutOfMemory()) {
    return 'A';
  }
  return 'E';
}

QueryResult RunOnce(SystemKind system, const tpch::LineitemGenerator &gen,
                    const tpch::GroupingQuery &query,
                    const BenchOptions &options) {
  QueryResult result;
  BufferManager bm(options.temp_dir, options.memory_limit);
  TaskExecutor executor(options.threads);
  executor.SetDeadline(options.timeout_seconds);
  auto source = gen.MakeSource(query.projection);
  CountingCollector collector;

  // Attribute registry growth to this query for every system model; the
  // robust path gets the richer profile from RunGroupedAggregation itself.
  RegistryDelta delta;
  bool profile_filled = false;

  auto start = std::chrono::steady_clock::now();
  Status status;
  switch (system) {
    case SystemKind::kRobust: {
      auto stats = RunGroupedAggregation(bm, *source, query.group_columns,
                                         query.aggregates, collector,
                                         executor, options.AggConfig(),
                                         &result.profile);
      status = stats.ok() ? Status::OK() : stats.status();
      profile_filled = true;
      break;
    }
    case SystemKind::kUmbra: {
      status = RunInMemoryAggregation(bm, *source, query.group_columns,
                                      query.aggregates, collector, executor,
                                      options.AggConfig(), nullptr);
      break;
    }
    case SystemKind::kHyPer: {
      SwitchExternalConfig config;
      config.in_memory = options.AggConfig();
      config.sort.temp_directory = options.temp_dir;
      config.sort.run_memory_bytes =
          std::max<idx_t>(options.memory_limit / (options.threads * 4),
                          4ULL << 20);
      status = RunSwitchExternalAggregation(bm, *source, query.group_columns,
                                            query.aggregates, collector,
                                            executor, config, nullptr);
      break;
    }
    case SystemKind::kClickHouse: {
      TwoLevelSpillAggregate::Config config;
      config.temp_directory = options.temp_dir;
      status = RunSpillPartitionAggregation(bm, *source, query.group_columns,
                                            query.aggregates, collector,
                                            executor, config, nullptr);
      break;
    }
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.tag = TagFromStatus(status);
  result.result_rows = collector.TotalRows();
  result.snapshot = bm.Snapshot();
  if (!profile_filled) {
    result.profile.threads = executor.num_threads();
    result.profile.total_seconds = result.seconds;
    delta.AddTo(result.profile);
    const ExecutorStats &exec = executor.stats();
    result.profile.AddTiming("exec.worker_seconds", exec.worker_seconds);
    result.profile.AddTiming("exec.source_seconds", exec.source_seconds);
    result.profile.AddTiming("exec.sink_seconds", exec.sink_seconds);
    result.profile.AddTiming("exec.combine_seconds", exec.combine_seconds);
  }
  return result;
}

}  // namespace

QueryResult RunGroupingQuery(SystemKind system,
                             const tpch::LineitemGenerator &generator,
                             const tpch::Grouping &grouping, bool wide,
                             const BenchOptions &options) {
  auto query = tpch::BuildGroupingQuery(grouping, wide);
  QueryResult best;
  for (idx_t run = 0; run < options.runs; run++) {
    QueryResult r = RunOnce(system, generator, query, options);
    r.profile.query = std::string(SystemShortName(system)) + ":" +
                      grouping.Name() + (wide ? "/wide" : "/narrow");
    if (run == 0 || (r.ok() && r.seconds < best.seconds)) {
      best = r;
    }
    if (!r.ok()) {
      break;  // failures are deterministic; no point repeating
    }
  }
  return best;
}

std::string NormalizedGeoMeanCell(const std::vector<QueryResult> &system,
                                  const std::vector<QueryResult> &baseline) {
  double log_sum = 0;
  idx_t count = 0;
  for (idx_t i = 0; i < system.size(); i++) {
    if (!system[i].ok()) {
      return std::string(1, system[i].tag == ' ' ? 'A' : system[i].tag);
    }
    if (!baseline[i].ok() || baseline[i].seconds <= 0 ||
        system[i].seconds <= 0) {
      continue;
    }
    log_sum += std::log(system[i].seconds / baseline[i].seconds);
    count++;
  }
  if (count == 0) {
    return "-";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", std::exp(log_sum / count));
  return buffer;
}

void PrintRule(const std::vector<int> &widths) {
  for (int w : widths) {
    std::fputc('+', stdout);
    for (int i = 0; i < w + 2; i++) {
      std::fputc('-', stdout);
    }
  }
  std::puts("+");
}

void PrintRow(const std::vector<std::string> &cells,
              const std::vector<int> &widths) {
  for (idx_t i = 0; i < cells.size(); i++) {
    std::printf("| %*s ", widths[i], cells[i].c_str());
  }
  std::puts("|");
}

std::string FormatBytes(idx_t bytes) {
  char buffer[32];
  if (bytes >= (1ULL << 30)) {
    std::snprintf(buffer, sizeof(buffer), "%.2f GiB",
                  static_cast<double>(bytes) / (1ULL << 30));
  } else if (bytes >= (1ULL << 20)) {
    std::snprintf(buffer, sizeof(buffer), "%.1f MiB",
                  static_cast<double>(bytes) / (1ULL << 20));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f KiB",
                  static_cast<double>(bytes) / 1024.0);
  }
  return buffer;
}

}  // namespace bench
}  // namespace ssagg
