#include "harness_util.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ssagg {
namespace bench {

namespace {
idx_t EnvIdx(const char *name, idx_t fallback) {
  const char *value = std::getenv(name);
  return value ? static_cast<idx_t>(std::strtoull(value, nullptr, 10))
               : fallback;
}
double EnvDouble(const char *name, double fallback) {
  const char *value = std::getenv(name);
  return value ? std::strtod(value, nullptr) : fallback;
}
}  // namespace

BenchOptions BenchOptions::FromEnv() {
  BenchOptions options;
  options.threads = EnvIdx("SSAGG_BENCH_THREADS", options.threads);
  options.timeout_seconds =
      EnvDouble("SSAGG_BENCH_TIMEOUT", options.timeout_seconds);
  options.memory_limit =
      EnvIdx("SSAGG_BENCH_MEMORY_MB", options.memory_limit >> 20) << 20;
  options.scale_cap = EnvIdx("SSAGG_BENCH_SF_CAP", options.scale_cap);
  options.runs = EnvIdx("SSAGG_BENCH_RUNS", options.runs);
  if (const char *dir = std::getenv("SSAGG_BENCH_TMPDIR")) {
    options.temp_dir = dir;
  }
  options.radix_bits = EnvIdx("SSAGG_BENCH_RADIX_BITS", options.radix_bits);
  options.phase1_capacity =
      EnvIdx("SSAGG_BENCH_PHASE1_CAPACITY", options.phase1_capacity);
  return options;
}

const char *SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kRobust:
      return "Robust (ours)";
    case SystemKind::kClickHouse:
      return "ClickHouse-model";
    case SystemKind::kHyPer:
      return "HyPer-model";
    case SystemKind::kUmbra:
      return "Umbra-model";
  }
  return "?";
}

const char *SystemShortName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kRobust:
      return "Du";
    case SystemKind::kClickHouse:
      return "Cl";
    case SystemKind::kHyPer:
      return "Hy";
    case SystemKind::kUmbra:
      return "Um";
  }
  return "?";
}

const std::vector<SystemKind> &AllSystems() {
  static const std::vector<SystemKind> *systems = new std::vector<SystemKind>{
      SystemKind::kRobust, SystemKind::kClickHouse, SystemKind::kHyPer,
      SystemKind::kUmbra};
  return *systems;
}

std::string QueryResult::Cell() const {
  if (tag != ' ') {
    return std::string(1, tag);
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), seconds < 10 ? "%.2f" : "%.1f",
                seconds);
  return buffer;
}

namespace {

char TagFromStatus(const Status &status) {
  if (status.ok()) {
    return ' ';
  }
  if (status.IsTimeout()) {
    return 'T';
  }
  if (status.IsAborted() || status.IsOutOfMemory()) {
    return 'A';
  }
  return 'E';
}

QueryResult RunOnce(SystemKind system, const tpch::LineitemGenerator &gen,
                    const tpch::GroupingQuery &query,
                    const BenchOptions &options) {
  QueryResult result;
  BufferManager bm(options.temp_dir, options.memory_limit);
  TaskExecutor executor(options.threads);
  executor.SetDeadline(options.timeout_seconds);
  auto source = gen.MakeSource(query.projection);
  CountingCollector collector;

  auto start = std::chrono::steady_clock::now();
  Status status;
  switch (system) {
    case SystemKind::kRobust: {
      auto stats = RunGroupedAggregation(bm, *source, query.group_columns,
                                         query.aggregates, collector,
                                         executor, options.AggConfig());
      status = stats.ok() ? Status::OK() : stats.status();
      break;
    }
    case SystemKind::kUmbra: {
      status = RunInMemoryAggregation(bm, *source, query.group_columns,
                                      query.aggregates, collector, executor,
                                      options.AggConfig(), nullptr);
      break;
    }
    case SystemKind::kHyPer: {
      SwitchExternalConfig config;
      config.in_memory = options.AggConfig();
      config.sort.temp_directory = options.temp_dir;
      config.sort.run_memory_bytes =
          std::max<idx_t>(options.memory_limit / (options.threads * 4),
                          4ULL << 20);
      status = RunSwitchExternalAggregation(bm, *source, query.group_columns,
                                            query.aggregates, collector,
                                            executor, config, nullptr);
      break;
    }
    case SystemKind::kClickHouse: {
      TwoLevelSpillAggregate::Config config;
      config.temp_directory = options.temp_dir;
      status = RunSpillPartitionAggregation(bm, *source, query.group_columns,
                                            query.aggregates, collector,
                                            executor, config, nullptr);
      break;
    }
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.tag = TagFromStatus(status);
  result.result_rows = collector.TotalRows();
  result.snapshot = bm.Snapshot();
  return result;
}

}  // namespace

QueryResult RunGroupingQuery(SystemKind system,
                             const tpch::LineitemGenerator &generator,
                             const tpch::Grouping &grouping, bool wide,
                             const BenchOptions &options) {
  auto query = tpch::BuildGroupingQuery(grouping, wide);
  QueryResult best;
  for (idx_t run = 0; run < options.runs; run++) {
    QueryResult r = RunOnce(system, generator, query, options);
    if (run == 0 || (r.ok() && r.seconds < best.seconds)) {
      best = r;
    }
    if (!r.ok()) {
      break;  // failures are deterministic; no point repeating
    }
  }
  return best;
}

std::string NormalizedGeoMeanCell(const std::vector<QueryResult> &system,
                                  const std::vector<QueryResult> &baseline) {
  double log_sum = 0;
  idx_t count = 0;
  for (idx_t i = 0; i < system.size(); i++) {
    if (!system[i].ok()) {
      return std::string(1, system[i].tag == ' ' ? 'A' : system[i].tag);
    }
    if (!baseline[i].ok() || baseline[i].seconds <= 0 ||
        system[i].seconds <= 0) {
      continue;
    }
    log_sum += std::log(system[i].seconds / baseline[i].seconds);
    count++;
  }
  if (count == 0) {
    return "-";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", std::exp(log_sum / count));
  return buffer;
}

void PrintRule(const std::vector<int> &widths) {
  for (int w : widths) {
    std::fputc('+', stdout);
    for (int i = 0; i < w + 2; i++) {
      std::fputc('-', stdout);
    }
  }
  std::puts("+");
}

void PrintRow(const std::vector<std::string> &cells,
              const std::vector<int> &widths) {
  for (idx_t i = 0; i < cells.size(); i++) {
    std::printf("| %*s ", widths[i], cells[i].c_str());
  }
  std::puts("|");
}

std::string FormatBytes(idx_t bytes) {
  char buffer[32];
  if (bytes >= (1ULL << 30)) {
    std::snprintf(buffer, sizeof(buffer), "%.2f GiB",
                  static_cast<double>(bytes) / (1ULL << 30));
  } else if (bytes >= (1ULL << 20)) {
    std::snprintf(buffer, sizeof(buffer), "%.1f MiB",
                  static_cast<double>(bytes) / (1ULL << 20));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f KiB",
                  static_cast<double>(bytes) / 1024.0);
  }
  return buffer;
}

}  // namespace bench
}  // namespace ssagg
