// Ablation for the Section IX (future work) extension implemented in this
// library: adaptive early partition-wise aggregation during phase 1. On a
// duplicate-heavy distribution (uniform random keys recurring at intervals
// larger than the phase-1 table), thread-local data grows with the INPUT
// size rather than the output size; under memory pressure that inflates
// temporary I/O. Early compaction re-aggregates a thread's own partitions
// when the pool is nearly full, shrinking the intermediates before they
// spill.
//
// The strategy is pinned to radix merge so the off/on/auto rows differ only
// in the early-aggregation mode, but the planner still samples: each row
// reports the strategy it WOULD have chosen plus its cardinality estimate,
// so this ablation doubles as a planner-calibration check (DESIGN.md
// Section 11).

#include <cstdio>

#include "harness_util.h"

using namespace ssagg;         // NOLINT(build/namespaces)
using namespace ssagg::bench;  // NOLINT(build/namespaces)

namespace {

const char *ModeName(EarlyAggMode mode) {
  switch (mode) {
    case EarlyAggMode::kOff:
      return "off";
    case EarlyAggMode::kOn:
      return "on";
    case EarlyAggMode::kAuto:
      return "auto";
  }
  return "?";
}

}  // namespace

int main() {
  BenchOptions options = BenchOptions::FromEnv();
  idx_t sf = std::min<idx_t>(options.scale_cap, 64);
  tpch::LineitemGenerator gen(static_cast<double>(sf));
  // Grouping 6 (l_partkey): every key recurs ~30x at long random intervals.
  const auto &grouping = tpch::TableIGroupings()[5];
  auto query = tpch::BuildGroupingQuery(grouping, /*wide=*/true);
  idx_t limit = 48ULL << 20;  // far below the duplicated-intermediate size

  std::printf("Ablation: early partition-wise aggregation (Section IX "
              "extension)\nwide grouping 6, SF %llu (%llu rows), memory "
              "limit %s\n\n",
              static_cast<unsigned long long>(sf),
              static_cast<unsigned long long>(gen.RowCount()),
              FormatBytes(limit).c_str());
  std::vector<int> widths = {9, 8, 14, 12, 12, 12, 12, 10, 12};
  PrintRule(widths);
  PrintRow({"early", "time s", "to phase 2", "compacted", "compactions",
            "temp peak", "temp write", "advised", "est groups"},
           widths);
  PrintRule(widths);
  Json rows = Json::Array();
  for (EarlyAggMode mode :
       {EarlyAggMode::kOff, EarlyAggMode::kOn, EarlyAggMode::kAuto}) {
    BufferManager bm(options.temp_dir, limit);
    TaskExecutor executor(options.threads);
    auto source = gen.MakeSource(query.projection);
    CountingCollector collector;
    HashAggregateConfig config;
    config.phase1_capacity = 1ULL << 14;
    config.radix_bits = 4;
    // Pin the plan so the rows differ only in the early-aggregation mode;
    // the planner still samples and records what it would have chosen.
    config.strategy = AggregateStrategy::kRadixMerge;
    config.early_aggregation = mode;
    auto stats_res = RunGroupedAggregation(bm, *source, query.group_columns,
                                           query.aggregates, collector,
                                           executor, config);
    if (!stats_res.ok()) {
      std::printf("early=%s failed: %s\n", ModeName(mode),
                  stats_res.status().ToString().c_str());
      continue;
    }
    const auto &stats = stats_res.value();
    auto snap = bm.Snapshot();
    char time_s[16];
    std::snprintf(time_s, sizeof(time_s), "%.2f",
                  stats.phase1_seconds + stats.phase2_seconds);
    const char *advised = stats.planner_decided
                              ? AggregateStrategyName(stats.planner.advised)
                              : "?";
    PrintRow({ModeName(mode), time_s,
              std::to_string(stats.materialized_rows),
              std::to_string(stats.early_compacted_rows),
              std::to_string(stats.early_compactions),
              FormatBytes(snap.temp_file_peak),
              FormatBytes(snap.temp_writes * kPageSize), advised,
              std::to_string(stats.planner.estimated_groups)},
             widths);
    std::fflush(stdout);

    Json row = Json::Object();
    row.Set("early", ModeName(mode));
    row.Set("seconds", stats.phase1_seconds + stats.phase2_seconds);
    row.Set("materialized_rows", stats.materialized_rows);
    row.Set("early_compacted_rows", stats.early_compacted_rows);
    row.Set("early_compactions", stats.early_compactions);
    row.Set("temp_file_peak", snap.temp_file_peak);
    row.Set("temp_write_bytes", snap.temp_writes * kPageSize);
    row.Set("advised_strategy", advised);
    row.Set("estimated_groups", stats.planner.estimated_groups);
    row.Set("reduction_ratio", stats.planner.reduction_ratio);
    row.Set("sampling_seconds", stats.sampling_seconds);
    rows.Push(std::move(row));
  }
  PrintRule(widths);
  std::printf("\n'to phase 2' = rows handed to partition-wise aggregation. "
              "Early compaction trades\nCPU and some write amplification "
              "(compacted pages may spill again) for a much\nsmaller "
              "temporary-file high-water mark and phase-2 workload — the "
              "trade the paper's\nfuture-work section proposes; it pays off "
              "when temporary disk space or phase-2\nmemory is the binding "
              "constraint. 'advised' is the strategy the adaptive planner\n"
              "would have picked had it not been pinned to radix.\n");
  Json payload = Json::Object();
  payload.Set("scale_factor", sf);
  payload.Set("memory_limit", limit);
  payload.Set("rows", std::move(rows));
  std::string path =
      WriteResultsJson("bench_ablation_early_agg", options, std::move(payload));
  if (!path.empty()) {
    std::printf("results: %s\n", path.c_str());
  }
  return 0;
}
