#ifndef SSAGG_BENCH_SCALING_FIGURE_H_
#define SSAGG_BENCH_SCALING_FIGURE_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "harness_util.h"

namespace ssagg {
namespace bench {

/// Shared driver for Figures 5 (thin) and 6 (wide): execution time of
/// groupings 3, 6, and 13 at scale factors 1..128 (log-log in the paper),
/// one series per system. Failures propagate to larger scale factors: the
/// paper stops plotting a system after its first abort/timeout, so we skip
/// (and annotate) the rest of the row instead of burning the time budget.
/// Writes results/<bench_name>.json with every cell's full QueryResult
/// (timings, tag, snapshot, per-query profile).
inline int RunScalingFigure(const char *bench_name, const char *title,
                            bool wide) {
  BenchOptions options = BenchOptions::FromEnv();
  std::vector<idx_t> scale_factors;
  for (idx_t sf = 1; sf <= options.scale_cap; sf *= 2) {
    scale_factors.push_back(sf);
  }
  const int grouping_ids[3] = {3, 6, 13};

  std::printf("%s\n", title);
  std::printf("threads=%llu memory=%s timeout=%.0fs "
              "(cells: seconds; A=aborted, T=timed out)\n",
              static_cast<unsigned long long>(options.threads),
              FormatBytes(options.memory_limit).c_str(),
              options.timeout_seconds);

  Json groupings_json = Json::Array();
  for (int gid : grouping_ids) {
    const auto &grouping = tpch::TableIGroupings()[gid - 1];
    std::printf("\nGrouping %d (%s):\n", gid, grouping.Name().c_str());
    std::vector<int> widths = {16};
    std::vector<std::string> header = {"system \\ SF"};
    for (idx_t sf : scale_factors) {
      header.push_back(std::to_string(sf));
      widths.push_back(7);
    }
    PrintRule(widths);
    PrintRow(header, widths);
    PrintRule(widths);
    Json systems_json = Json::Object();
    for (auto system : AllSystems()) {
      std::vector<std::string> cells = {SystemName(system)};
      Json series = Json::Array();
      char failed = 0;
      for (idx_t sf : scale_factors) {
        if (failed) {
          cells.push_back(std::string(1, failed));
          Json skipped = Json::Object();
          skipped.Set("sf", sf);
          skipped.Set("tag", std::string(1, failed));
          skipped.Set("skipped", true);
          series.Push(std::move(skipped));
          continue;
        }
        tpch::LineitemGenerator gen(static_cast<double>(sf));
        QueryResult result =
            RunGroupingQuery(system, gen, grouping, wide, options);
        cells.push_back(result.Cell());
        Json cell = result.ToJson();
        cell.Set("sf", sf);
        series.Push(std::move(cell));
        if (!result.ok()) {
          failed = result.tag;
        }
      }
      PrintRow(cells, widths);
      std::fflush(stdout);
      systems_json.Set(SystemShortName(system), std::move(series));
    }
    PrintRule(widths);
    Json grouping_json = Json::Object();
    grouping_json.Set("grouping", gid);
    grouping_json.Set("name", grouping.Name());
    grouping_json.Set("wide", wide);
    grouping_json.Set("systems", std::move(systems_json));
    groupings_json.Push(std::move(grouping_json));
  }
  std::printf("\nexpected shape (paper Fig. %s): all systems scale linearly "
              "while in memory; past the\nmemory limit the in-memory-only "
              "model aborts, the switching model jumps (cliff) and\n"
              "eventually fails, while the robust system keeps scaling "
              "near-linearly.\n",
              wide ? "6" : "5");

  Json sfs = Json::Array();
  for (idx_t sf : scale_factors) {
    sfs.Push(sf);
  }
  Json payload = Json::Object();
  payload.Set("scale_factors", std::move(sfs));
  payload.Set("groupings", std::move(groupings_json));
  return WriteResultsJson(bench_name, options, std::move(payload)).empty()
             ? 1
             : 0;
}

}  // namespace bench
}  // namespace ssagg

#endif  // SSAGG_BENCH_SCALING_FIGURE_H_
