// Ablation: the 16-bit salt in the hash-table entries (Section V,
// "Collision Resolution"). With the salt, almost all linear-probing
// collisions are resolved without following the pointer and comparing
// group keys; without it, every occupied slot on the probe path costs a
// full key comparison. Reported: wall time, probe steps, key comparisons,
// and wasted comparisons, on a high-cardinality aggregation with a nearly
// full fixed-size table (the regime where collisions dominate).

#include <cstdio>

#include "harness_util.h"

using namespace ssagg;         // NOLINT(build/namespaces)
using namespace ssagg::bench;  // NOLINT(build/namespaces)

int main() {
  BenchOptions options = BenchOptions::FromEnv();
  idx_t sf = std::min<idx_t>(options.scale_cap, 32);
  tpch::LineitemGenerator gen(static_cast<double>(sf));
  const auto &grouping = tpch::TableIGroupings()[12];  // all-unique keys
  auto query = tpch::BuildGroupingQuery(grouping, /*wide=*/false);

  std::printf("Ablation: entry salt on/off (thin grouping 13, SF %llu, "
              "%llu rows)\n\n",
              static_cast<unsigned long long>(sf),
              static_cast<unsigned long long>(gen.RowCount()));
  std::vector<int> widths = {9, 8, 13, 13, 16, 13};
  PrintRule(widths);
  PrintRow({"salt", "time s", "probe steps", "key compares", "wasted "
            "compares", "per row"},
           widths);
  PrintRule(widths);
  for (bool use_salt : {true, false}) {
    BufferManager bm(options.temp_dir, options.memory_limit);
    TaskExecutor executor(options.threads);
    auto source = gen.MakeSource(query.projection);
    CountingCollector collector;
    HashAggregateConfig config = options.AggConfig();
    config.use_salt = use_salt;
    auto stats_res = RunGroupedAggregation(bm, *source, query.group_columns,
                                           query.aggregates, collector,
                                           executor, config);
    if (!stats_res.ok()) {
      std::printf("failed: %s\n", stats_res.status().ToString().c_str());
      return 1;
    }
    const auto &stats = stats_res.value();
    char time_s[16], per_row[16];
    std::snprintf(time_s, sizeof(time_s), "%.3f",
                  stats.phase1_seconds + stats.phase2_seconds);
    std::snprintf(per_row, sizeof(per_row), "%.3f",
                  static_cast<double>(stats.ht.key_compare_misses) /
                      gen.RowCount());
    PrintRow({use_salt ? "on" : "off", time_s,
              std::to_string(stats.ht.probe_steps),
              std::to_string(stats.ht.key_compares),
              std::to_string(stats.ht.key_compare_misses), per_row},
             widths);
  }
  PrintRule(widths);
  std::printf("\n'wasted compares' = key comparisons that did not match. "
              "The salt filters collisions\nwith a 16-bit check before "
              "touching the tuple, cutting wasted comparisons by\n~2^16x "
              "in expectation (Section V).\n");
  return 0;
}
