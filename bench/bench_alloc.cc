// Reproduces the Section VII "Allocation Performance" micro-benchmark:
// latency of a small (256 KiB = one page) and a large (256 MiB = 1,024
// pages) allocation,
//   (a) straight from the system allocator,
//   (b) through the buffer manager with ample memory,
//   (c) through the buffer manager when memory is full of evictable
//       (persistent-like, can_destroy) pages.
// Paper's findings to reproduce: routing through the buffer manager adds
// negligible bookkeeping overhead; under a full pool the small allocation
// gets FASTER (one evicted same-size buffer is reused), while the large one
// pays for ~1,024 evictions/deallocations.

#include <benchmark/benchmark.h>

#include "ssagg/ssagg.h"

namespace ssagg {
namespace {

constexpr idx_t kSmall = kPageSize;             // 262,144 B
constexpr idx_t kLarge = 1024 * kPageSize;      // 268,435,456 B

const char *TempDir() {
  const char *dir = std::getenv("SSAGG_BENCH_TMPDIR");
  return dir ? dir : "/tmp/ssagg_bench";
}

void BM_MallocSmall(benchmark::State &state) {
  for (auto _ : state) {
    void *p = std::malloc(kSmall);
    benchmark::DoNotOptimize(p);
    std::free(p);
  }
}
BENCHMARK(BM_MallocSmall);

void BM_MallocLarge(benchmark::State &state) {
  for (auto _ : state) {
    void *p = std::malloc(kLarge);
    benchmark::DoNotOptimize(p);
    std::free(p);
  }
}
BENCHMARK(BM_MallocLarge);

void BufferManagerAlloc(benchmark::State &state, idx_t size,
                        bool fill_memory) {
  BufferManager bm(TempDir(), kLarge + 64 * kPageSize);
  // Optionally fill the pool with evictable pages (can_destroy models
  // persistent pages: eviction is free, no temp-file writes).
  std::vector<std::shared_ptr<BlockHandle>> filler;
  if (fill_memory) {
    while (true) {
      std::shared_ptr<BlockHandle> block;
      auto res = bm.Allocate(kPageSize, &block, /*can_destroy=*/true);
      if (!res.ok()) {
        break;
      }
      filler.push_back(std::move(block));
      if (bm.memory_used() + kPageSize > bm.memory_limit()) {
        break;
      }
    }
  }
  for (auto _ : state) {
    std::shared_ptr<BlockHandle> block;
    auto res = bm.Allocate(size, &block, /*can_destroy=*/true);
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    auto handle = res.MoveValue();
    benchmark::DoNotOptimize(handle.Ptr());
    handle.Reset();
    bm.DestroyBlock(block);
    if (fill_memory) {
      // Re-fill what the allocation evicted so every iteration sees a full
      // pool (like the paper's repeated-allocation loop).
      while (bm.memory_used() + kPageSize <= bm.memory_limit()) {
        std::shared_ptr<BlockHandle> refill;
        if (!bm.Allocate(kPageSize, &refill, true).ok()) {
          break;
        }
        filler.push_back(std::move(refill));
      }
    }
  }
}

void BM_BufferManagerSmallAmple(benchmark::State &state) {
  BufferManagerAlloc(state, kSmall, /*fill_memory=*/false);
}
BENCHMARK(BM_BufferManagerSmallAmple);

void BM_BufferManagerLargeAmple(benchmark::State &state) {
  BufferManagerAlloc(state, kLarge, /*fill_memory=*/false);
}
BENCHMARK(BM_BufferManagerLargeAmple);

void BM_BufferManagerSmallFull(benchmark::State &state) {
  BufferManagerAlloc(state, kSmall, /*fill_memory=*/true);
}
BENCHMARK(BM_BufferManagerSmallFull);

void BM_BufferManagerLargeFull(benchmark::State &state) {
  BufferManagerAlloc(state, kLarge, /*fill_memory=*/true);
}
BENCHMARK(BM_BufferManagerLargeFull);

}  // namespace
}  // namespace ssagg

BENCHMARK_MAIN();
