// Ablation: radix partition fan-out (Section V, "Partitioning" /
// over-partitioning). More partitions keep phase-2 memory pressure low
// ("the question becomes whether one fully aggregated partition per thread
// fits in memory") at the cost of more pinned build pages in phase 1.
// Sweep 2^1..2^6 partitions on a larger-than-memory aggregation and report
// completion, time, and peak temporary-file size.

#include <cstdio>

#include "harness_util.h"

using namespace ssagg;         // NOLINT(build/namespaces)
using namespace ssagg::bench;  // NOLINT(build/namespaces)

int main() {
  BenchOptions options = BenchOptions::FromEnv();
  idx_t sf = std::min<idx_t>(options.scale_cap, 64);
  tpch::LineitemGenerator gen(static_cast<double>(sf));
  const auto &grouping = tpch::TableIGroupings()[12];  // all-unique keys
  auto query = tpch::BuildGroupingQuery(grouping, /*wide=*/true);
  options.memory_limit = std::min<idx_t>(options.memory_limit, 96ULL << 20);

  std::printf("Ablation: radix partition count (wide grouping 13, SF %llu, "
              "memory limit %s)\n\n",
              static_cast<unsigned long long>(sf),
              FormatBytes(options.memory_limit).c_str());
  std::vector<int> widths = {11, 9, 12, 12, 12};
  PrintRule(widths);
  PrintRow({"partitions", "time s", "temp peak", "pinned floor", "phase2 s"},
           widths);
  PrintRule(widths);
  for (idx_t bits = 1; bits <= 6; bits++) {
    BufferManager bm(options.temp_dir, options.memory_limit);
    TaskExecutor executor(options.threads);
    executor.SetDeadline(options.timeout_seconds);
    auto source = gen.MakeSource(query.projection);
    CountingCollector collector;
    HashAggregateConfig config = options.AggConfig();
    config.radix_bits = bits;
    idx_t pinned_floor =
        (idx_t(1) << bits) * options.threads * 2 * kPageSize;
    auto stats_res = RunGroupedAggregation(bm, *source, query.group_columns,
                                           query.aggregates, collector,
                                           executor, config);
    char cell[32];
    if (!stats_res.ok()) {
      const auto &st = stats_res.status();
      std::snprintf(cell, sizeof(cell), "%s",
                    st.IsOutOfMemory() || st.IsAborted() ? "A"
                    : st.IsTimeout()                     ? "T"
                                                         : "E");
      PrintRow({std::to_string(idx_t(1) << bits), cell,
                FormatBytes(bm.Snapshot().temp_file_peak),
                FormatBytes(pinned_floor), "-"},
               widths);
      continue;
    }
    const auto &stats = stats_res.value();
    char time_s[16], p2[16];
    std::snprintf(time_s, sizeof(time_s), "%.2f",
                  stats.phase1_seconds + stats.phase2_seconds);
    std::snprintf(p2, sizeof(p2), "%.2f", stats.phase2_seconds);
    PrintRow({std::to_string(idx_t(1) << bits), time_s,
              FormatBytes(bm.Snapshot().temp_file_peak),
              FormatBytes(pinned_floor), p2},
             widths);
    std::fflush(stdout);
  }
  PrintRule(widths);
  std::printf("\ntoo few partitions: a fully aggregated partition (plus "
              "one per concurrent thread)\ndoes not fit -> abort. More "
              "partitions fix that at the price of a larger pinned\n"
              "build-page floor. This is why the paper over-partitions for "
              "external aggregation.\n");
  return 0;
}
