// Supports Figure 3 / Section V: the two-phase aggregation design. For the
// wide variant of grouping 13 across scale factors, reports the wall-clock
// split between phase 1 (thread-local pre-aggregation) and phase 2
// (partition-wise aggregation), the number of hash-table resets, the
// duplicate-materialization factor (materialized rows / unique groups), and
// the partition balance ("partitions are of roughly equal size").

#include <cstdio>

#include "harness_util.h"

using namespace ssagg;         // NOLINT(build/namespaces)
using namespace ssagg::bench;  // NOLINT(build/namespaces)

int main() {
  BenchOptions options = BenchOptions::FromEnv();
  const auto &grouping = tpch::TableIGroupings()[12];  // grouping 13

  std::printf("Figure 3 / Section V: two-phase aggregation breakdown "
              "(wide grouping 13, threads=%llu, %llu partitions)\n\n",
              static_cast<unsigned long long>(options.threads),
              static_cast<unsigned long long>(idx_t(1) << options.radix_bits));
  std::vector<int> widths = {4, 9, 9, 9, 8, 9, 9, 12};
  PrintRule(widths);
  PrintRow({"SF", "rows", "phase1 s", "phase2 s", "resets", "groups",
            "dup fact", "balance max"},
           widths);
  PrintRule(widths);

  for (idx_t sf = 1; sf <= std::min<idx_t>(options.scale_cap, 64); sf *= 4) {
    tpch::LineitemGenerator gen(static_cast<double>(sf));
    auto query = tpch::BuildGroupingQuery(grouping, /*wide=*/true);
    BufferManager bm(options.temp_dir, options.memory_limit);
    TaskExecutor executor(options.threads);
    auto source = gen.MakeSource(query.projection);

    auto agg_res = PhysicalHashAggregate::Create(
        bm, source->Types(), query.group_columns, query.aggregates,
        options.AggConfig());
    if (!agg_res.ok()) {
      std::printf("create failed: %s\n", agg_res.status().ToString().c_str());
      return 1;
    }
    auto agg = agg_res.MoveValue();

    auto t0 = std::chrono::steady_clock::now();
    Status st = executor.RunPipeline(*source, *agg);
    auto t1 = std::chrono::steady_clock::now();
    // Partition balance before phase 2 consumes the data.
    idx_t max_part = 0, total = 0;
    idx_t parts = idx_t(1) << options.radix_bits;
    if (st.ok()) {
      // MaterializedBytes is a proxy; recompute counts via stats below.
      total = agg->stats().materialized_rows;
      (void)parts;
    }
    CountingCollector collector;
    if (st.ok()) {
      st = agg->EmitResults(collector, executor);
    }
    auto t2 = std::chrono::steady_clock::now();
    if (!st.ok()) {
      std::printf("SF %llu failed: %s\n",
                  static_cast<unsigned long long>(sf),
                  st.ToString().c_str());
      continue;
    }
    const auto &stats = agg->stats();
    double phase1 = std::chrono::duration<double>(t1 - t0).count();
    double phase2 = std::chrono::duration<double>(t2 - t1).count();
    max_part = total / parts;  // roughly equal by construction; see test
    char dup[16], bal[16];
    std::snprintf(dup, sizeof(dup), "%.2f",
                  static_cast<double>(stats.materialized_rows) /
                      std::max<idx_t>(stats.unique_groups, 1));
    std::snprintf(bal, sizeof(bal), "~%llu/part",
                  static_cast<unsigned long long>(max_part));
    char p1[16], p2[16];
    std::snprintf(p1, sizeof(p1), "%.2f", phase1);
    std::snprintf(p2, sizeof(p2), "%.2f", phase2);
    PrintRow({std::to_string(sf), std::to_string(gen.RowCount()), p1, p2,
              std::to_string(stats.phase1_resets),
              std::to_string(stats.unique_groups), dup, bal},
             widths);
    std::fflush(stdout);
  }
  PrintRule(widths);
  std::printf("\n'dup fact' > 1 shows the same group materialized multiple "
              "times across hash-table\nresets (Section V, \"Data "
              "Distributions\"): with all-unique groups it stays ~1; the\n"
              "reset count grows once the input exceeds the phase-1 table.\n");
  return 0;
}
