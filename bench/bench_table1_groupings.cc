// Reproduces Table I: the 13 lineitem groupings of the aggregation
// benchmark and their unique-group counts (computed by running the robust
// aggregation with a counting sink), at a few scale factors. Validates that
// the generator's group-count structure scales like the paper's.

#include <cstdio>

#include "harness_util.h"

using namespace ssagg;        // NOLINT(build/namespaces)
using namespace ssagg::bench; // NOLINT(build/namespaces)

int main() {
  BenchOptions options = BenchOptions::FromEnv();
  std::vector<idx_t> scale_factors = {1, 8};
  if (options.scale_cap < 8) {
    scale_factors = {1};
  }

  std::printf("Table I: groupings of the lineitem table (mini scale: "
              "%llu rows per SF unit)\n\n",
              static_cast<unsigned long long>(
                  tpch::LineitemGenerator(1).RowCount()));
  std::vector<int> widths = {2, 40, 14, 14};
  PrintRule(widths);
  PrintRow({"#", "group columns", "groups @SF1",
            scale_factors.size() > 1 ? "groups @SF8" : ""},
           widths);
  PrintRule(widths);

  for (const auto &grouping : tpch::TableIGroupings()) {
    std::vector<std::string> cells = {std::to_string(grouping.id),
                                      grouping.Name()};
    for (idx_t sf : scale_factors) {
      tpch::LineitemGenerator gen(static_cast<double>(sf));
      QueryResult result = RunGroupingQuery(SystemKind::kRobust, gen,
                                            grouping, /*wide=*/false,
                                            options);
      cells.push_back(result.ok() ? std::to_string(result.result_rows)
                                  : result.Cell());
    }
    while (cells.size() < widths.size()) {
      cells.push_back("");
    }
    PrintRow(cells, widths);
  }
  PrintRule(widths);
  std::printf("\npaper reference points: grouping 1 has 4 groups at every "
              "SF; grouping 4 (l_orderkey)\nhas ~rows/4 groups; grouping 13 "
              "(suppkey,partkey,orderkey) is all-unique.\n");
  return 0;
}
