// Utility: run one grouping query on one system model and print timing and
// buffer-manager statistics. Handy for exploring the parameter space
// without running a whole table bench.
//
//   bench_single_query [SF] [thin|wide] [grouping 1-13] [du|cl|hy|um]
//
// Environment knobs are shared with the other benches (SSAGG_BENCH_*).

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "harness_util.h"

using namespace ssagg;         // NOLINT(build/namespaces)
using namespace ssagg::bench;  // NOLINT(build/namespaces)

int main(int argc, char **argv) {
  BenchOptions options = BenchOptions::FromEnv();
  double sf = argc > 1 ? std::atof(argv[1]) : 8;
  bool wide = argc > 2 && argv[2][0] == 'w';
  int gid = argc > 3 ? std::atoi(argv[3]) : 13;
  SystemKind system = SystemKind::kRobust;
  if (argc > 4) {
    switch (argv[4][0]) {
      case 'c':
        system = SystemKind::kClickHouse;
        break;
      case 'h':
        system = SystemKind::kHyPer;
        break;
      case 'u':
        system = SystemKind::kUmbra;
        break;
      default:
        system = SystemKind::kRobust;
    }
  }
  if (gid < 1 || gid > 13) {
    SSAGG_LOG_ERROR("grouping must be 1..13");
    return 1;
  }
  tpch::LineitemGenerator gen(sf);
  const auto &grouping = tpch::TableIGroupings()[gid - 1];
  std::printf("%s | grouping %d (%s) %s | SF %.2f (%llu rows) | "
              "memory %s, %llu threads\n",
              SystemName(system), gid, grouping.Name().c_str(),
              wide ? "wide" : "thin", sf,
              static_cast<unsigned long long>(gen.RowCount()),
              FormatBytes(options.memory_limit).c_str(),
              static_cast<unsigned long long>(options.threads));
  QueryResult result = RunGroupingQuery(system, gen, grouping, wide, options);
  std::printf("result: %s s | %llu groups | temp peak %s | evictions "
              "temp=%llu pers=%llu | temp I/O w=%llu r=%llu\n",
              result.Cell().c_str(),
              static_cast<unsigned long long>(result.result_rows),
              FormatBytes(result.snapshot.temp_file_peak).c_str(),
              static_cast<unsigned long long>(
                  result.snapshot.evicted_temporary_count),
              static_cast<unsigned long long>(
                  result.snapshot.evicted_persistent_count),
              static_cast<unsigned long long>(result.snapshot.temp_writes),
              static_cast<unsigned long long>(result.snapshot.temp_reads));
  Json payload = Json::Object();
  payload.Set("scale_factor", Json(sf));
  payload.Set("wide", Json(wide));
  payload.Set("grouping", Json(grouping.Name()));
  payload.Set("system", Json(SystemShortName(system)));
  payload.Set("result", result.ToJson());
  WriteResultsJson("bench_single_query", options, std::move(payload));
  return result.ok() ? 0 : 2;
}
