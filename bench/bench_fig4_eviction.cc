// Reproduces Figure 4 / Section VII ("Loading & Spilling"): the interplay
// of persistent and temporary pages in the unified pool under the three
// eviction policies — Mixed (DuckDB's default), TemporaryFirst, and
// PersistentFirst.
//
// Setup mirrors the paper: thin grouping 4 (l_orderkey only) over a
// PERSISTENT lineitem table, run repeatedly, with the memory limit chosen
// close to the size of the intermediates so the buffer manager must make
// real eviction decisions. Scenario A is a single connection (paper: 10
// repetitions, 4 threads); scenario B runs several concurrent connections
// against one pool. Reported per policy: total runtime, peak temporary-file
// size, and eviction counts.

#include <cstdio>
#include <thread>

#include "common/mutex.h"
#include "harness_util.h"

using namespace ssagg;         // NOLINT(build/namespaces)
using namespace ssagg::bench;  // NOLINT(build/namespaces)

namespace {

struct ScenarioResult {
  double seconds = 0;
  BufferManagerSnapshot snapshot;
  bool ok = true;
  std::string error;
};

const char *PolicyName(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kMixed:
      return "Mixed";
    case EvictionPolicy::kTemporaryFirst:
      return "TemporaryFirst";
    case EvictionPolicy::kPersistentFirst:
      return "PersistentFirst";
  }
  return "?";
}

ScenarioResult RunScenario(DataTable &table, const tpch::GroupingQuery &query,
                           EvictionPolicy policy, idx_t connections,
                           idx_t repetitions, const BenchOptions &options,
                           BufferManager &bm) {
  ScenarioResult result;
  bm.SetEvictionPolicy(policy);
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  Mutex error_lock;
  for (idx_t c = 0; c < connections; c++) {
    workers.emplace_back([&, c]() {
      (void)c;
      TaskExecutor executor(options.threads);
      for (idx_t rep = 0; rep < repetitions; rep++) {
        auto source = table.MakeScanSource(bm, query.projection);
        CountingCollector collector;
        auto stats = RunGroupedAggregation(bm, *source, query.group_columns,
                                           query.aggregates, collector,
                                           executor, options.AggConfig());
        if (!stats.ok()) {
          ScopedLock guard(error_lock);
          result.ok = false;
          result.error = stats.status().ToString();
          return;
        }
      }
    });
  }
  for (auto &worker : workers) {
    worker.join();
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.snapshot = bm.Snapshot();
  return result;
}

}  // namespace

int main() {
  BenchOptions options = BenchOptions::FromEnv();
  // Few partitions: grouping 4's intermediates are small at mini scale and
  // the per-partition pinned build pages must not dwarf them.
  options.radix_bits = 3;
  // Scale factor and memory limit chosen like the paper: the limit is close
  // to the total intermediate size of thin grouping 4, so good eviction
  // decisions matter but the query is not I/O-bound.
  idx_t sf = std::min<idx_t>(options.scale_cap, 64);
  idx_t repetitions = 5;
  tpch::LineitemGenerator gen(static_cast<double>(sf));
  auto query = tpch::BuildGroupingQuery(tpch::TableIGroupings()[3],  // g4
                                        /*wide=*/false);

  std::printf("Figure 4 / Section VII: eviction policies "
              "(thin grouping 4 over a persistent table, SF %llu, "
              "%llu repetitions)\n\n",
              static_cast<unsigned long long>(sf),
              static_cast<unsigned long long>(repetitions));

  // Build the persistent lineitem table once (only the scanned column plus
  // a few others, to keep the build fast but the table non-trivial).
  std::string db_path = options.temp_dir + "/fig4_lineitem.db";
  (void)FileSystem::Default().CreateDirectories(options.temp_dir);
  auto block_mgr_res = FileBlockManager::Create(db_path);
  if (!block_mgr_res.ok()) {
    std::printf("cannot create db: %s\n",
                block_mgr_res.status().ToString().c_str());
    return 1;
  }
  auto block_mgr = block_mgr_res.MoveValue();
  std::vector<idx_t> stored_cols = {tpch::kOrderKey, tpch::kPartKey,
                                    tpch::kSuppKey, tpch::kShipDate};
  Schema schema;
  for (idx_t c : stored_cols) {
    schema.push_back(tpch::LineitemSchema()[c]);
  }
  // The stored table's column 0 is l_orderkey; rebuild the query against
  // the stored schema.
  tpch::GroupingQuery stored_query;
  stored_query.projection = {0};
  stored_query.group_columns = {0};

  DataTable table(*block_mgr, schema);
  {
    DataChunk chunk(tpch::LineitemGenerator::ColumnTypes(stored_cols));
    for (idx_t start = 0; start < gen.RowCount(); start += kVectorSize) {
      idx_t n = std::min(kVectorSize, gen.RowCount() - start);
      if (!gen.FillChunk(chunk, stored_cols, start, n).ok() ||
          !table.Append(chunk).ok()) {
        std::printf("table build failed\n");
        return 1;
      }
      chunk.Reset();
    }
    if (!table.FinalizeAppend().ok()) {
      return 1;
    }
  }
  std::printf("persistent table: %llu rows, %llu blocks (%s compressed)\n\n",
              static_cast<unsigned long long>(table.RowCount()),
              static_cast<unsigned long long>(table.BlockCount()),
              FormatBytes(table.CompressedBytes()).c_str());

  // Calibrate the memory limit to "approximately the total size of the
  // intermediates" (paper Section VII): a dry run with an ample pool
  // measures the materialized bytes, and the limit adds the algorithm's
  // pinned floor (partitions x threads x build pages) on top.
  idx_t materialized_bytes = 0;
  {
    BufferManager dry_bm(options.temp_dir, 2048ULL << 20);
    TaskExecutor executor(options.threads);
    auto source = table.MakeScanSource(dry_bm, stored_query.projection);
    CountingCollector collector;
    auto agg = PhysicalHashAggregate::Create(
                   dry_bm, source->Types(), stored_query.group_columns,
                   stored_query.aggregates, options.AggConfig())
                   .MoveValue();
    if (!executor.RunPipeline(*source, *agg).ok()) {
      std::printf("dry run failed\n");
      return 1;
    }
    materialized_bytes = agg->MaterializedBytes();
    if (!agg->EmitResults(collector, executor).ok()) {
      return 1;
    }
    table.ReleaseHandleCache(dry_bm);
  }
  idx_t pinned_floor = (idx_t(1) << options.radix_bits) * options.threads *
                       2 * kPageSize;
  idx_t limit = materialized_bytes + pinned_floor;
  std::printf("intermediates: %s materialized; pinned floor %s\n\n",
              FormatBytes(materialized_bytes).c_str(),
              FormatBytes(pinned_floor).c_str());
  const EvictionPolicy policies[3] = {EvictionPolicy::kMixed,
                                      EvictionPolicy::kTemporaryFirst,
                                      EvictionPolicy::kPersistentFirst};
  Json scenarios = Json::Array();
  for (auto [connections, label] :
       {std::pair<idx_t, const char *>{1, "single connection"},
        std::pair<idx_t, const char *>{4, "four connections"}}) {
    idx_t scenario_limit = limit * connections;
    std::printf("--- %s (memory limit %s) ---\n", label,
                FormatBytes(scenario_limit).c_str());
    std::vector<int> widths = {16, 9, 12, 12, 12, 10};
    PrintRule(widths);
    PrintRow({"policy", "time s", "temp peak", "evict temp", "evict pers",
              "reloads"},
             widths);
    PrintRule(widths);
    Json scenario = Json::Object();
    scenario.Set("connections", Json(static_cast<uint64_t>(connections)));
    scenario.Set("memory_limit", Json(static_cast<uint64_t>(scenario_limit)));
    Json by_policy = Json::Object();
    for (auto policy : policies) {
      BufferManager bm(options.temp_dir, scenario_limit, policy);
      // Fresh block-handle cache per run lives in the table; persistent
      // pages start cold for every policy.
      auto result = RunScenario(table, stored_query, policy, connections,
                                repetitions, options, bm);
      table.ReleaseHandleCache(bm);
      Json entry = Json::Object();
      entry.Set("ok", Json(result.ok));
      entry.Set("seconds", Json(result.seconds));
      entry.Set("snapshot", SnapshotJson(result.snapshot));
      if (!result.ok) {
        entry.Set("error", Json(result.error));
      }
      by_policy.Set(PolicyName(policy), std::move(entry));
      if (!result.ok) {
        PrintRow({PolicyName(policy), "FAIL", result.error, "", "", ""},
                 widths);
        continue;
      }
      char secs[16];
      std::snprintf(secs, sizeof(secs), "%.2f", result.seconds);
      PrintRow({PolicyName(policy), secs,
                FormatBytes(result.snapshot.temp_file_peak),
                std::to_string(result.snapshot.evicted_temporary_count),
                std::to_string(result.snapshot.evicted_persistent_count),
                std::to_string(result.snapshot.temp_reads)},
               widths);
      std::fflush(stdout);
    }
    scenario.Set("policies", std::move(by_policy));
    scenarios.Push(std::move(scenario));
    PrintRule(widths);
    std::printf("\n");
  }
  std::printf("expected shape (paper Fig. 4): with one connection, "
              "PersistentFirst wins (evicting\npersistent pages is free) "
              "and keeps the temp file smallest; with several\nconnections "
              "the order flips — evicting all persistent data makes every "
              "scan hit\nstorage and throughput collapses (thrashing), so "
              "TemporaryFirst wins and Mixed is\na decent compromise.\n");
  Json payload = Json::Object();
  payload.Set("sf", Json(static_cast<uint64_t>(sf)));
  payload.Set("repetitions", Json(static_cast<uint64_t>(repetitions)));
  payload.Set("materialized_bytes",
              Json(static_cast<uint64_t>(materialized_bytes)));
  payload.Set("scenarios", std::move(scenarios));
  WriteResultsJson("bench_fig4_eviction", options, std::move(payload));
  (void)FileSystem::Default().RemoveFile(db_path);
  return 0;
}
