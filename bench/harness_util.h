#ifndef SSAGG_BENCH_HARNESS_UTIL_H_
#define SSAGG_BENCH_HARNESS_UTIL_H_

#include <string>
#include <vector>

#include "ssagg/ssagg.h"

namespace ssagg {
namespace bench {

/// Shared configuration of the reproduction benches. Values are scaled to
/// the "mini" data scale (DESIGN.md Section 3): the default 192 MiB memory
/// limit puts the in-memory/external crossovers at the same relative scale
/// factors as the paper's 32 GB did.
struct BenchOptions {
  idx_t threads = 2;
  double timeout_seconds = 60;   // paper: 600 s on full-scale data
  idx_t memory_limit = 192ULL << 20;
  idx_t scale_cap = 128;         // skip scale factors above this
  idx_t runs = 1;                // paper: median of 5
  std::string temp_dir = "/tmp/ssagg_bench";
  /// Aggregation knobs, scaled to the mini data scale: the paper
  /// over-partitions so one aggregated partition per thread fits in memory
  /// (Section V); at a 192 MiB limit that needs 2^5 partitions and a
  /// proportionally smaller phase-1 table.
  idx_t radix_bits = 5;
  idx_t phase1_capacity = 1ULL << 15;

  /// The aggregation config used for every hash-based system model.
  HashAggregateConfig AggConfig() const {
    HashAggregateConfig config;
    config.radix_bits = radix_bits;
    config.phase1_capacity = phase1_capacity;
    return config;
  }

  /// Reads SSAGG_BENCH_THREADS, SSAGG_BENCH_TIMEOUT, SSAGG_BENCH_MEMORY_MB,
  /// SSAGG_BENCH_SF_CAP, SSAGG_BENCH_RUNS, SSAGG_BENCH_TMPDIR.
  static BenchOptions FromEnv();

  /// The options as a JSON object (embedded in every results file, so a
  /// diff between two runs shows configuration drift).
  Json ToJson() const;
};

/// The four systems of the paper's evaluation (Section VIII), as
/// behavioural models sharing one substrate (DESIGN.md Section 3).
enum class SystemKind {
  kRobust,      // "Du": this paper / DuckDB
  kClickHouse,  // "Cl": two-level HT, serialize-spills partitions
  kHyPer,       // "Hy": switches to external sort aggregation
  kUmbra,       // "Um": in-memory only, aborts past the limit
};

const char *SystemName(SystemKind kind);
const char *SystemShortName(SystemKind kind);
const std::vector<SystemKind> &AllSystems();

/// Result of one benchmark query.
struct QueryResult {
  double seconds = 0;
  char tag = ' ';  // ' ' ok, 'A' aborted, 'T' timed out, 'E' other error
  idx_t result_rows = 0;
  bool skipped = false;  // propagated failure from a smaller scale factor
  BufferManagerSnapshot snapshot;
  /// Per-query observability snapshot (phase timings + "agg.*"/"exec.*"/
  /// "bm.*"/"io.*" counters); filled by RunGroupingQuery for every system.
  QueryProfile profile;

  bool ok() const { return tag == ' ' && !skipped; }
  /// "0.42" / "A" / "T" — the paper's table cell format.
  std::string Cell() const;
  /// {"seconds", "tag", "result_rows", "snapshot", "profile"}.
  Json ToJson() const;
};

/// Runs one Table I grouping on one system at one scale factor, with a
/// fresh buffer manager per query (paper: each query runs standalone).
QueryResult RunGroupingQuery(SystemKind system,
                             const tpch::LineitemGenerator &generator,
                             const tpch::Grouping &grouping, bool wide,
                             const BenchOptions &options);

/// Geometric mean of per-query times normalized to the baseline system's
/// times ("this weighs each query fairly", Section VIII). Returns the cell
/// text: a number, or 'A'/'T' if any query failed.
std::string NormalizedGeoMeanCell(const std::vector<QueryResult> &system,
                                  const std::vector<QueryResult> &baseline);

/// Fixed-width table printing helpers.
void PrintRule(const std::vector<int> &widths);
void PrintRow(const std::vector<std::string> &cells,
              const std::vector<int> &widths);

/// Bytes -> "123.4 MiB" style.
std::string FormatBytes(idx_t bytes);

/// Flat JSON object view of a buffer-manager snapshot.
Json SnapshotJson(const BufferManagerSnapshot &snapshot);

/// Writes the uniform bench results file, results/<bench_name>.json:
///
///   { "bench": <name>, "options": {...}, ...payload members... }
///
/// `payload` must be a JSON object; its members land at the top level next
/// to the envelope fields. Creates results/ if needed; returns the path
/// written, or "" on failure (after printing a diagnostic).
std::string WriteResultsJson(const std::string &bench_name,
                             const BenchOptions &options, Json payload);

}  // namespace bench
}  // namespace ssagg

#endif  // SSAGG_BENCH_HARNESS_UTIL_H_
