// Cardinality sweep for the adaptive merge-strategy planner (DESIGN.md
// section 11): runs the full aggregation operator over group counts
// 10 .. 10M in dense and sparse key distributions, once per forced strategy
// (central, tree, radix) and once with the adaptive planner, all with ample
// memory so the merge strategies are compared without spill noise.
//
// The interesting readouts: at low cardinality the right-sized central /
// tree merge tables stay cache-resident and beat the radix plan's
// materialize-everything pipeline; at high cardinality the radix plan wins
// and the adaptive run must track it (its sampling overhead is the gap).
// The adaptive column also reports which strategy was picked and the
// planner's cardinality estimate — drift against the truth column is a
// calibration bug.
//
// Env: SSAGG_BENCH_MAX_GROUPS caps the group axis (default 10M);
// SSAGG_BENCH_THREADS / SSAGG_BENCH_TMPDIR as usual. Writes
// results/bench_strategy_adaptive.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/file_system.h"
#include "harness_util.h"

using namespace ssagg;         // NOLINT(build/namespaces)
using namespace ssagg::bench;  // NOLINT(build/namespaces)

namespace {

struct RunResult {
  double seconds = 0;
  double rows_per_sec = 0;
  idx_t groups = 0;
  HashAggregateStats stats;
};

/// Deterministic pre-generated key stream (dense: uniform in [0, groups);
/// sparse: `groups` distinct random 64-bit values), so the measured source
/// is a memcpy and the aggregation pipeline dominates the signal.
std::vector<int64_t> MakeKeys(bool sparse, idx_t groups, idx_t rows) {
  std::vector<int64_t> keys;
  keys.reserve(rows);
  for (idx_t row = 0; row < rows; row++) {
    uint64_t g = HashUint64(row) % groups;
    keys.push_back(static_cast<int64_t>(
        sparse ? HashUint64(g ^ 0xabcdef12345678ULL) : g));
  }
  return keys;
}

RunResult RunOnce(AggregateStrategy strategy, const std::vector<int64_t> &keys,
                  const BenchOptions &options) {
  // Ample memory: the sweep compares merge strategies, not spill behavior.
  BufferManager bm(options.temp_dir, 4096ULL << 20);
  TaskExecutor executor(options.threads);
  idx_t rows = keys.size();
  static const std::vector<int64_t> kOnes(kVectorSize, 1);
  RangeSource source(
      {LogicalTypeId::kInt64, LogicalTypeId::kInt64}, rows,
      [&keys](DataChunk &chunk, idx_t start, idx_t count) {
        std::memcpy(chunk.column(0).data(), keys.data() + start,
                    count * sizeof(int64_t));
        std::memcpy(chunk.column(1).data(), kOnes.data(),
                    count * sizeof(int64_t));
        return Status::OK();
      });
  CountingCollector collector;
  // Engine defaults, NOT the spill-tuned bench AggConfig: the baseline this
  // sweep pins is the static default plan (2^17-entry phase-1 tables sized
  // for the general case); the planner's right-sized tables are the point.
  HashAggregateConfig config;
  config.strategy = strategy;
  auto start = std::chrono::steady_clock::now();
  auto stats = RunGroupedAggregation(bm, source, {0},
                                     {{AggregateKind::kSum, 1}}, collector,
                                     executor, config);
  auto end = std::chrono::steady_clock::now();
  if (!stats.ok()) {
    SSAGG_LOG_ERROR("%s failed: %s", AggregateStrategyName(strategy),
                    stats.status().ToString().c_str());
    std::exit(1);
  }
  RunResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.rows_per_sec =
      result.seconds > 0 ? static_cast<double>(rows) / result.seconds : 0;
  result.groups = collector.TotalRows();
  result.stats = stats.MoveValue();
  return result;
}

/// Median-of-N wrapper (SSAGG_BENCH_RUNS; the paper uses the median of 5):
/// this container's timings are noisy enough that single runs routinely
/// swing +-30%.
RunResult RunOne(AggregateStrategy strategy, const std::vector<int64_t> &keys,
                 const BenchOptions &options) {
  std::vector<RunResult> runs;
  for (idx_t i = 0; i < std::max<idx_t>(options.runs, 1); i++) {
    runs.push_back(RunOnce(strategy, keys, options));
  }
  std::sort(runs.begin(), runs.end(),
            [](const RunResult &a, const RunResult &b) {
              return a.seconds < b.seconds;
            });
  return runs[runs.size() / 2];
}

idx_t EnvIdx(const char *name, idx_t fallback) {
  const char *value = std::getenv(name);
  return value != nullptr ? static_cast<idx_t>(std::strtoull(value, nullptr,
                                                             10))
                          : fallback;
}

std::string Fmt(const char *format, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

Json RunJson(const RunResult &r) {
  Json object = Json::Object();
  object.Set("seconds", r.seconds);
  object.Set("rows_per_sec", r.rows_per_sec);
  object.Set("result_groups", r.groups);
  object.Set("materialized_rows", r.stats.materialized_rows);
  object.Set("chosen_strategy",
             AggregateStrategyName(r.stats.planner.strategy));
  object.Set("advised_strategy",
             AggregateStrategyName(r.stats.planner.advised));
  object.Set("estimated_groups", r.stats.planner.estimated_groups);
  object.Set("sampling_seconds", r.stats.sampling_seconds);
  object.Set("demoted", r.stats.planner_demoted);
  return object;
}

}  // namespace

int main() {
  BenchOptions options = BenchOptions::FromEnv();
  idx_t max_groups = EnvIdx("SSAGG_BENCH_MAX_GROUPS", 10'000'000);
  (void)FileSystem::Default().CreateDirectories(options.temp_dir);

  std::vector<idx_t> group_counts = {10, 1'000, 100'000, 1'000'000,
                                     10'000'000};
  const std::vector<AggregateStrategy> forced = {
      AggregateStrategy::kCentralMerge, AggregateStrategy::kTreeMerge,
      AggregateStrategy::kRadixMerge};

  std::printf("Merge-strategy sweep: forced central/tree/radix vs the "
              "adaptive planner\n(%llu threads, SUM over int64 keys, ample "
              "memory)\n\n",
              static_cast<unsigned long long>(options.threads));
  std::vector<int> widths = {7, 9, 8, 10, 10, 10, 10, 9, 12};
  PrintRule(widths);
  PrintRow({"dist", "groups", "rows M", "central s", "tree s", "radix s",
            "adapt s", "picked", "est groups"},
           widths);
  PrintRule(widths);

  Json configs = Json::Array();
  for (bool sparse : {false, true}) {
    for (idx_t groups : group_counts) {
      if (groups > max_groups) {
        continue;
      }
      idx_t rows = std::max<idx_t>(idx_t(1) << 22, 2 * groups);
      auto keys = MakeKeys(sparse, groups, rows);
      std::vector<RunResult> results;
      for (AggregateStrategy strategy : forced) {
        results.push_back(RunOne(strategy, keys, options));
      }
      RunResult adaptive = RunOne(AggregateStrategy::kAdaptive, keys, options);

      PrintRow({sparse ? "sparse" : "dense", std::to_string(groups),
                Fmt("%.1f", static_cast<double>(rows) / 1e6),
                Fmt("%.2f", results[0].seconds),
                Fmt("%.2f", results[1].seconds),
                Fmt("%.2f", results[2].seconds),
                Fmt("%.2f", adaptive.seconds),
                AggregateStrategyName(adaptive.stats.planner.strategy),
                std::to_string(adaptive.stats.planner.estimated_groups)},
               widths);
      std::fflush(stdout);

      Json config = Json::Object();
      config.Set("distribution", sparse ? "sparse" : "dense");
      config.Set("groups", groups);
      config.Set("rows", rows);
      config.Set("central", RunJson(results[0]));
      config.Set("tree", RunJson(results[1]));
      config.Set("radix", RunJson(results[2]));
      config.Set("adaptive", RunJson(adaptive));
      configs.Push(std::move(config));
    }
  }
  PrintRule(widths);
  std::printf("\n'picked' / 'est groups' come from the adaptive run's "
              "planner decision; the\nforced columns share the same data "
              "and configuration. Adaptive should track\nthe per-row "
              "winner, paying only the sampling window.\n");

  Json payload = Json::Object();
  payload.Set("configs", std::move(configs));
  return WriteResultsJson("bench_strategy_adaptive", options,
                          std::move(payload))
                 .empty()
             ? 1
             : 0;
}
