// Supports Figure 2 / Section IV: the spillable page layout. Measures:
//
//   1. in-memory append / scan throughput of the row layout (with strings);
//   2. spill + reload: bytes written vs. logical bytes (the layout spills
//      raw pages, so the ratio is ~1 and NO serialization happens), and the
//      cost of the lazy pointer recomputation on reload;
//   3. the same data pushed through the classic serialize/deserialize
//      temporary-file path (RunWriter/RunReader) for comparison — this is
//      the overhead the layout exists to avoid.

#include <chrono>
#include <cstdio>

#include "harness_util.h"
#include "sort/row_serializer.h"

using namespace ssagg;         // NOLINT(build/namespaces)
using namespace ssagg::bench;  // NOLINT(build/namespaces)

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void FillChunk(DataChunk &chunk, idx_t start, idx_t count) {
  for (idx_t i = 0; i < count; i++) {
    idx_t row = start + i;
    chunk.column(0).SetValue<int64_t>(i, static_cast<int64_t>(row));
    chunk.column(1).SetValue<double>(i, row * 0.5);
    chunk.column(2).SetString(i, "string_payload_row_" + std::to_string(row));
  }
  chunk.SetCount(count);
}

}  // namespace

int main() {
  BenchOptions options = BenchOptions::FromEnv();
  constexpr idx_t kRows = 1 << 20;  // ~1M rows, ~48 MiB of row data

  std::vector<LogicalTypeId> types = {LogicalTypeId::kInt64,
                                      LogicalTypeId::kDouble,
                                      LogicalTypeId::kVarchar};
  TupleDataLayout layout;
  layout.Initialize(types);
  DataChunk chunk(types);

  std::printf("Figure 2 / Section IV: spillable page layout "
              "(%llu rows, row width %llu B + string heap)\n\n",
              static_cast<unsigned long long>(kRows),
              static_cast<unsigned long long>(layout.RowWidth()));

  // ---- 1. in-memory append + scan ----------------------------------------
  {
    BufferManager bm(options.temp_dir, 4096ULL << 20);
    TupleDataCollection data(bm, layout);
    TupleDataAppendState append;
    auto t0 = std::chrono::steady_clock::now();
    for (idx_t start = 0; start < kRows; start += kVectorSize) {
      FillChunk(chunk, start, kVectorSize);
      (void)data.AppendRows(append, chunk, nullptr, kVectorSize, nullptr);
    }
    double append_s = Seconds(t0);
    append.Release();

    TupleDataScanState scan;
    data.InitScan(scan);
    DataChunk out(types);
    t0 = std::chrono::steady_clock::now();
    idx_t seen = 0;
    while (true) {
      auto more = data.Scan(scan, out);
      if (!more.ok() || !more.value()) {
        break;
      }
      seen += out.size();
    }
    double scan_s = Seconds(t0);
    std::printf("in-memory   append  %7.1f M rows/s   scan  %7.1f M rows/s "
                " (%llu rows, %s)\n",
                kRows / append_s / 1e6, seen / scan_s / 1e6,
                static_cast<unsigned long long>(seen),
                FormatBytes(data.SizeInBytes()).c_str());
  }

  // ---- 2. spill + reload through the buffer manager ----------------------
  {
    BufferManager bm(options.temp_dir, 16ULL << 20);  // force spilling
    TupleDataCollection data(bm, layout);
    TupleDataAppendState append;
    auto t0 = std::chrono::steady_clock::now();
    for (idx_t start = 0; start < kRows; start += kVectorSize) {
      FillChunk(chunk, start, kVectorSize);
      (void)data.AppendRows(append, chunk, nullptr, kVectorSize, nullptr);
      append.Release();  // pages spill as the pool fills
    }
    double append_s = Seconds(t0);
    auto snap = bm.Snapshot();
    double logical_mb = static_cast<double>(data.SizeInBytes()) / (1 << 20);
    double written_mb =
        static_cast<double>(snap.temp_writes) * kPageSize / (1 << 20);

    TupleDataScanState scan;
    data.InitScan(scan);
    DataChunk out(types);
    t0 = std::chrono::steady_clock::now();
    idx_t seen = 0;
    while (true) {
      auto more = data.Scan(scan, out);
      if (!more.ok() || !more.value()) {
        break;
      }
      seen += out.size();
    }
    double scan_s = Seconds(t0);
    std::printf("spilled     append  %7.1f M rows/s   scan  %7.1f M rows/s "
                " (reload + lazy pointer recompute)\n",
                kRows / append_s / 1e6, seen / scan_s / 1e6);
    std::printf("            page bytes written %.1f MiB for %.1f MiB of "
                "data (x%.2f, no serialization)\n",
                written_mb, logical_mb, written_mb / logical_mb);
  }

  // ---- 3. classic serialize/deserialize path for comparison --------------
  {
    BufferManager bm(options.temp_dir, 4096ULL << 20);
    TupleDataCollection data(bm, layout);
    TupleDataAppendState append;
    for (idx_t start = 0; start < kRows; start += kVectorSize) {
      FillChunk(chunk, start, kVectorSize);
      (void)data.AppendRows(append, chunk, nullptr, kVectorSize, nullptr);
    }
    RunWriter writer(layout, options.temp_dir + "/fig2_serialized.tmp");
    (void)writer.Open();
    auto t0 = std::chrono::steady_clock::now();
    TupleDataAppendState visit_state;
    (void)data.VisitRows(visit_state, [&](data_ptr_t row) {
      (void)writer.WriteRow(row);
    });
    (void)writer.Finish();
    double ser_s = Seconds(t0);
    visit_state.Release();

    RunReader reader(layout, options.temp_dir + "/fig2_serialized.tmp",
                     writer.RowCount());
    (void)reader.Open();
    std::vector<data_ptr_t> rows;
    DataChunk out(types);
    t0 = std::chrono::steady_clock::now();
    idx_t seen = 0;
    while (true) {
      rows.clear();
      auto n = reader.ReadBatch(kVectorSize, rows);
      if (!n.ok() || n.value() == 0) {
        break;
      }
      reader.GatherBatch(rows, out);
      seen += out.size();
    }
    double deser_s = Seconds(t0);
    (void)reader.Remove();
    std::printf("serialized  write   %7.1f M rows/s   read  %7.1f M rows/s "
                " (classic temp-file (de)serialization)\n",
                kRows / ser_s / 1e6, seen / deser_s / 1e6);
  }

  std::printf("\nThe spillable layout writes pages verbatim and fixes "
              "pointers lazily on reload;\nthe serializing path pays a "
              "per-row encode/decode — the overhead Section IV's\n"
              "requirement 4 eliminates.\n");
  return 0;
}
