// Spill I/O path microbench: the same memory-limited aggregation run under
// every SSAGG_IO_BACKEND x SSAGG_SPILL_COMPRESSION combination, configured
// explicitly (BufferManagerOptions) so one process sweeps the whole matrix.
//
// Reported per configuration:
//   - end-to-end query time and the seconds threads spent *blocked* on spill
//     writes/reads (async backends overlap the transfer, so blocked time
//     falls even when total bytes do not),
//   - spill throughput = raw spilled bytes / blocked spill seconds,
//   - write amplification = bytes physically written / raw spilled bytes
//     (1.0 uncompressed; < 1 when compression pays).
//
// Results land in results/bench_spill_io.json for scripts/bench_report.py.
//
// Beyond the shared SSAGG_BENCH_* harness knobs, three extras override the
// buffer manager's auto-tuned I/O settings for ablations:
//   SSAGG_BENCH_SPILL_BATCH  eviction writeback depth (0 = auto)
//   SSAGG_BENCH_PREFETCH     "0" disables spilled-block read-ahead
//   SSAGG_BENCH_IO_THREADS   worker count of the async backends

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness_util.h"

using namespace ssagg;         // NOLINT(build/namespaces)
using namespace ssagg::bench;  // NOLINT(build/namespaces)

namespace {

struct ConfigResult {
  std::string name;
  IoBackendKind requested = IoBackendKind::kSync;
  IoBackendKind effective = IoBackendKind::kSync;
  bool compression = false;
  bool ok = false;
  std::string error;
  double seconds = 0;
  double spill_blocked_seconds = 0;
  double spill_throughput = 0;  // raw bytes / blocked second
  double write_amp = 0;         // written bytes / raw bytes
  idx_t result_rows = 0;
  BufferManagerSnapshot snapshot;

  Json ToJson() const {
    Json doc = Json::Object();
    doc.Set("backend", Json(IoBackendKindName(requested)));
    doc.Set("effective_backend", Json(IoBackendKindName(effective)));
    doc.Set("compression", Json(compression));
    doc.Set("ok", Json(ok));
    if (!ok) {
      doc.Set("error", Json(error));
      return doc;
    }
    doc.Set("seconds", Json(seconds));
    doc.Set("spill_blocked_seconds", Json(spill_blocked_seconds));
    doc.Set("spill_throughput_bytes_per_s", Json(spill_throughput));
    doc.Set("write_amplification", Json(write_amp));
    doc.Set("result_rows", Json(static_cast<uint64_t>(result_rows)));
    doc.Set("snapshot", SnapshotJson(snapshot));
    return doc;
  }
};

ConfigResult RunConfig(const BenchOptions &options, idx_t sf, idx_t limit,
                       IoBackendKind backend, bool compression) {
  ConfigResult out;
  out.requested = backend;
  out.compression = compression;
  out.name = std::string(IoBackendKindName(backend)) +
             (compression ? "+comp" : "");

  BufferManagerOptions bm_options;
  bm_options.io_backend = backend;
  bm_options.spill_compression = compression;
  if (const char *v = std::getenv("SSAGG_BENCH_SPILL_BATCH")) {
    bm_options.spill_batch = static_cast<idx_t>(std::atoll(v));
  }
  if (const char *v = std::getenv("SSAGG_BENCH_PREFETCH")) {
    bm_options.prefetch = v[0] == '1';
  }
  if (const char *v = std::getenv("SSAGG_BENCH_IO_THREADS")) {
    bm_options.io_threads = static_cast<idx_t>(std::atoll(v));
  }
  BufferManager bm(options.temp_dir, limit, bm_options);
  out.effective = bm.io_backend().kind();

  tpch::LineitemGenerator gen(static_cast<double>(sf));
  // Grouping 6 (l_partkey), wide: duplicate-heavy structured rows, so the
  // intermediates dwarf the limit (lots of spilling) yet the pages are
  // realistic codec fodder rather than incompressible noise.
  const auto &grouping = tpch::TableIGroupings()[5];
  auto query = tpch::BuildGroupingQuery(grouping, /*wide=*/true);
  TaskExecutor executor(options.threads);
  auto source = gen.MakeSource(query.projection);
  CountingCollector collector;
  HashAggregateConfig config;
  config.phase1_capacity = 1ULL << 14;
  config.radix_bits = 4;

  auto stats_res = RunGroupedAggregation(bm, *source, query.group_columns,
                                         query.aggregates, collector,
                                         executor, config);
  if (!stats_res.ok()) {
    out.error = stats_res.status().ToString();
    return out;
  }
  const auto &stats = stats_res.value();
  out.ok = true;
  out.seconds = stats.phase1_seconds + stats.phase2_seconds;
  out.result_rows = collector.TotalRows();
  out.snapshot = bm.Snapshot();

  const auto &snap = out.snapshot;
  idx_t raw = snap.spill_raw_bytes ? snap.spill_raw_bytes
                                   : snap.spill_bytes_written;
  out.spill_blocked_seconds =
      snap.spill_write_seconds + snap.spill_read_seconds;
  if (out.spill_blocked_seconds > 0) {
    out.spill_throughput =
        static_cast<double>(raw + snap.spill_bytes_read) /
        out.spill_blocked_seconds;
  }
  if (raw > 0) {
    out.write_amp = static_cast<double>(snap.spill_bytes_written) /
                    static_cast<double>(raw);
  }
  return out;
}

}  // namespace

int main() {
  BenchOptions options = BenchOptions::FromEnv();
  idx_t sf = std::min<idx_t>(options.scale_cap, 48);
  idx_t limit = std::min<idx_t>(options.memory_limit, 64ULL << 20);

  {
    tpch::LineitemGenerator gen(static_cast<double>(sf));
    std::printf("Spill I/O sweep: backend x compression on a memory-limited "
                "aggregation\nwide grouping 6, SF %llu (%llu rows), memory "
                "limit %s, %llu threads\n\n",
                static_cast<unsigned long long>(sf),
                static_cast<unsigned long long>(gen.RowCount()),
                FormatBytes(limit).c_str(),
                static_cast<unsigned long long>(options.threads));
  }

  std::vector<int> widths = {16, 10, 8, 10, 12, 13, 10, 10};
  PrintRule(widths);
  PrintRow({"config", "time s", "blk s", "spill MB/s", "written", "raw",
            "w-amp", "reads"},
           widths);
  PrintRule(widths);

  std::vector<ConfigResult> results;
  for (IoBackendKind backend :
       {IoBackendKind::kSync, IoBackendKind::kThreadPool,
        IoBackendKind::kIoUring}) {
    for (bool compression : {false, true}) {
      ConfigResult r = RunConfig(options, sf, limit, backend, compression);
      if (!r.ok) {
        PrintRow({r.name, "failed: " + r.error}, {16, 60});
        results.push_back(std::move(r));
        continue;
      }
      const auto &snap = r.snapshot;
      char time_s[16], blk_s[16], tput[16], amp[16];
      std::snprintf(time_s, sizeof(time_s), "%.2f", r.seconds);
      std::snprintf(blk_s, sizeof(blk_s), "%.2f", r.spill_blocked_seconds);
      std::snprintf(tput, sizeof(tput), "%.0f",
                    r.spill_throughput / (1 << 20));
      std::snprintf(amp, sizeof(amp), "%.2fx", r.write_amp);
      PrintRow({r.name, time_s, blk_s, tput,
                FormatBytes(snap.spill_bytes_written),
                FormatBytes(snap.spill_raw_bytes), amp,
                FormatBytes(snap.spill_bytes_read)},
               widths);
      std::fflush(stdout);
      results.push_back(std::move(r));
    }
  }
  PrintRule(widths);

  // The two headline ratios the sweep exists to measure.
  const ConfigResult *sync_raw = nullptr, *async_raw = nullptr;
  const ConfigResult *raw_any = nullptr, *comp_any = nullptr;
  for (const auto &r : results) {
    if (!r.ok) continue;
    if (!r.compression && r.effective == IoBackendKind::kSync) sync_raw = &r;
    if (!r.compression && r.effective != IoBackendKind::kSync &&
        (!async_raw || r.spill_throughput > async_raw->spill_throughput)) {
      async_raw = &r;
    }
    if (!r.compression && !raw_any) raw_any = &r;
    if (r.compression && !comp_any) comp_any = &r;
  }
  Json summary = Json::Object();
  if (sync_raw && async_raw && sync_raw->spill_throughput > 0) {
    double speedup = async_raw->spill_throughput / sync_raw->spill_throughput;
    std::printf("\nasync (%s) vs sync spill throughput: %.2fx\n",
                async_raw->name.c_str(), speedup);
    summary.Set("async_vs_sync_spill_throughput", Json(speedup));
  }
  if (raw_any && comp_any && comp_any->snapshot.spill_bytes_written > 0) {
    double reduction =
        static_cast<double>(raw_any->snapshot.spill_bytes_written) /
        static_cast<double>(comp_any->snapshot.spill_bytes_written);
    std::printf("compression bytes-written reduction: %.2fx "
                "(%s -> %s)\n",
                reduction,
                FormatBytes(raw_any->snapshot.spill_bytes_written).c_str(),
                FormatBytes(comp_any->snapshot.spill_bytes_written).c_str());
    summary.Set("compression_bytes_reduction", Json(reduction));
  }

  Json payload = Json::Object();
  payload.Set("scale_factor", Json(static_cast<uint64_t>(sf)));
  payload.Set("memory_limit", Json(static_cast<uint64_t>(limit)));
  Json configs = Json::Array();
  for (const auto &r : results) configs.Push(r.ToJson());
  payload.Set("configs", std::move(configs));
  payload.Set("summary", std::move(summary));
  WriteResultsJson("bench_spill_io", options, std::move(payload));

  bool all_ok = std::all_of(results.begin(), results.end(),
                            [](const ConfigResult &r) { return r.ok; });
  return all_ok ? 0 : 2;
}
