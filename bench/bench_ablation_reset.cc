// Ablation: the phase-1 reset threshold (Section V, "RAM-Oblivious": "We
// reset the hash table once it is two-thirds full. This threshold was
// experimentally determined."). A low threshold resets too often (poor
// pre-aggregation, more duplicated groups, more materialized data); a high
// threshold probes an overfull table (collision storms). Run on a skewed /
// repetitive distribution where pre-aggregation matters: grouping 6
// (l_partkey, SF-scaled key domain) at a scale where groups >> table.

#include <cstdio>

#include "harness_util.h"

using namespace ssagg;         // NOLINT(build/namespaces)
using namespace ssagg::bench;  // NOLINT(build/namespaces)

int main() {
  BenchOptions options = BenchOptions::FromEnv();
  idx_t sf = std::min<idx_t>(options.scale_cap, 64);
  tpch::LineitemGenerator gen(static_cast<double>(sf));
  const auto &grouping = tpch::TableIGroupings()[5];  // g6: l_partkey (each key
  // recurs at intervals far larger than the table: the dup-factor regime)
  auto query = tpch::BuildGroupingQuery(grouping, /*wide=*/false);

  std::printf("Ablation: phase-1 reset fill ratio (thin grouping 6, SF "
              "%llu, %llu rows, table capacity %llu)\n\n",
              static_cast<unsigned long long>(sf),
              static_cast<unsigned long long>(gen.RowCount()),
              static_cast<unsigned long long>(options.phase1_capacity));
  std::vector<int> widths = {7, 8, 8, 14, 10, 13};
  PrintRule(widths);
  PrintRow({"fill", "time s", "resets", "materialized", "dup fact",
            "probes/row"},
           widths);
  PrintRule(widths);
  for (double fill : {0.25, 0.5, 2.0 / 3.0, 0.9, 0.98}) {
    BufferManager bm(options.temp_dir, options.memory_limit);
    TaskExecutor executor(options.threads);
    auto source = gen.MakeSource(query.projection);
    CountingCollector collector;
    HashAggregateConfig config = options.AggConfig();
    config.reset_fill_ratio = fill;
    auto stats_res = RunGroupedAggregation(bm, *source, query.group_columns,
                                           query.aggregates, collector,
                                           executor, config);
    if (!stats_res.ok()) {
      std::printf("fill %.2f failed: %s\n", fill,
                  stats_res.status().ToString().c_str());
      continue;
    }
    const auto &stats = stats_res.value();
    char fill_s[16], time_s[16], dup[16], probes[16];
    std::snprintf(fill_s, sizeof(fill_s), "%.2f", fill);
    std::snprintf(time_s, sizeof(time_s), "%.3f",
                  stats.phase1_seconds + stats.phase2_seconds);
    std::snprintf(dup, sizeof(dup), "%.2f",
                  static_cast<double>(stats.materialized_rows) /
                      std::max<idx_t>(stats.unique_groups, 1));
    std::snprintf(probes, sizeof(probes), "%.2f",
                  static_cast<double>(stats.ht.probe_steps) / gen.RowCount());
    PrintRow({fill_s, time_s, std::to_string(stats.phase1_resets),
              std::to_string(stats.materialized_rows), dup, probes},
             widths);
    std::fflush(stdout);
  }
  PrintRule(widths);
  std::printf("\nlow fill: frequent resets duplicate groups "
              "(materialized rows grow); high fill:\nprobe chains explode. "
              "2/3 balances both — the paper's experimentally determined "
              "choice.\n");
  return 0;
}
