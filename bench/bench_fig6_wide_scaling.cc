// Reproduces Figure 6: execution times for the WIDE variant of groupings
// 3, 6, and 13 at scale factors 1 through 128. Performance degradation
// starts earlier than in Figure 5 because the ANY_VALUE payload columns
// multiply the memory pressure.

#include "scaling_figure.h"

int main() {
  return ssagg::bench::RunScalingFigure(
      "bench_fig6_wide_scaling",
      "Figure 6: wide-variant scaling of groupings 3, 6, 13 (SF 1..128)",
      /*wide=*/true);
}
