// Reproduces Table III: execution times of the WIDE variant of all 13
// groupings (all non-group columns selected via ANY_VALUE) at scale factors
// 2, 8, 32, and 128, across the four system models.
//
// Expected shape (paper Section VIII, "Wide Groupings"): memory pressure is
// much higher than in Table II, so the in-memory-only model aborts from
// mid scale factors on, the switch-to-external model degrades sharply and
// times out, the partition-spilling model survives longer but aborts on the
// largest groupings, and the robust system completes the whole matrix.

#include "table_matrix.h"

int main() {
  return ssagg::bench::RunTableMatrix(
      "Table III: wide groupings (all other columns via ANY_VALUE)",
      /*wide=*/true);
}
