// Ablation: NSM (row-major) vs. DSM (column-major) for materialized
// intermediates (Section IV, "DSM vs. NSM": "for intermediates, a
// row-major layout was shown to be optimal ... for join and aggregate hash
// tables"). Micro-benchmark of the hash-table comparison pattern: N
// resident tuples of K attributes are probed in random order and all K
// attributes of each probed tuple are compared, either from a row-major
// block (one cache line per tuple) or from K separate column arrays (K
// scattered accesses per tuple).

#include <benchmark/benchmark.h>

#include "ssagg/ssagg.h"

namespace ssagg {
namespace {

constexpr idx_t kTuples = 1 << 20;
constexpr idx_t kColumns = 4;  // 4 x int64 attributes
constexpr idx_t kProbes = 1 << 20;

std::vector<idx_t> MakeProbeOrder() {
  std::vector<idx_t> order(kProbes);
  RandomEngine rng(7);
  for (auto &p : order) {
    p = rng.NextRange(kTuples);
  }
  return order;
}

void BM_RowMajorCompare(benchmark::State &state) {
  // Rows of kColumns contiguous int64 values (the paper's layout).
  std::vector<int64_t> rows(kTuples * kColumns);
  for (idx_t i = 0; i < kTuples; i++) {
    for (idx_t c = 0; c < kColumns; c++) {
      rows[i * kColumns + c] = static_cast<int64_t>(i * 31 + c);
    }
  }
  auto order = MakeProbeOrder();
  for (auto _ : state) {
    int64_t matches = 0;
    for (idx_t p : order) {
      const int64_t *row = rows.data() + p * kColumns;
      bool match = true;
      for (idx_t c = 0; c < kColumns; c++) {
        match &= row[c] == static_cast<int64_t>(p * 31 + c);
      }
      matches += match;
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * kProbes);
}
BENCHMARK(BM_RowMajorCompare);

void BM_ColumnMajorCompare(benchmark::State &state) {
  // One array per attribute (DSM): each comparison touches kColumns
  // scattered cache lines.
  std::vector<std::vector<int64_t>> columns(kColumns,
                                            std::vector<int64_t>(kTuples));
  for (idx_t c = 0; c < kColumns; c++) {
    for (idx_t i = 0; i < kTuples; i++) {
      columns[c][i] = static_cast<int64_t>(i * 31 + c);
    }
  }
  auto order = MakeProbeOrder();
  for (auto _ : state) {
    int64_t matches = 0;
    for (idx_t p : order) {
      bool match = true;
      for (idx_t c = 0; c < kColumns; c++) {
        match &= columns[c][p] == static_cast<int64_t>(p * 31 + c);
      }
      matches += match;
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * kProbes);
}
BENCHMARK(BM_ColumnMajorCompare);

}  // namespace
}  // namespace ssagg

BENCHMARK_MAIN();
