#ifndef SSAGG_BENCH_TABLE_MATRIX_H_
#define SSAGG_BENCH_TABLE_MATRIX_H_

#include <cstdio>
#include <map>

#include "harness_util.h"

namespace ssagg {
namespace bench {

/// Shared driver for Tables II (thin) and III (wide): all 13 groupings x
/// scale factors x 4 systems, with per-SF geometric means normalized to the
/// robust system — the exact shape of the paper's tables. Once a system
/// fails (abort/timeout) on a grouping at some SF, larger SFs of the same
/// grouping are marked with the same tag without running (failures are
/// monotone in input size; this also bounds the harness runtime).
inline int RunTableMatrix(const char *title, bool wide) {
  BenchOptions options = BenchOptions::FromEnv();
  std::vector<idx_t> scale_factors;
  for (idx_t sf : {idx_t(2), idx_t(8), idx_t(32), idx_t(128)}) {
    if (sf <= options.scale_cap) {
      scale_factors.push_back(sf);
    }
  }
  const auto &systems = AllSystems();
  const auto &groupings = tpch::TableIGroupings();

  std::printf("%s\n", title);
  std::printf("threads=%llu memory=%s timeout=%.0fs "
              "(cells: seconds; A=aborted, T=timed out)\n\n",
              static_cast<unsigned long long>(options.threads),
              FormatBytes(options.memory_limit).c_str(),
              options.timeout_seconds);

  std::vector<int> widths = {8};
  std::vector<std::string> header = {"grouping"};
  for (idx_t sf : scale_factors) {
    for (auto system : systems) {
      header.push_back(std::string(SystemShortName(system)) + "@" +
                       std::to_string(sf));
      widths.push_back(7);
    }
  }
  PrintRule(widths);
  PrintRow(header, widths);
  PrintRule(widths);

  // results[sf][system] = per-grouping results (for the geo-mean row).
  std::map<idx_t, std::map<SystemKind, std::vector<QueryResult>>> results;
  for (const auto &grouping : groupings) {
    std::vector<std::string> cells = {std::to_string(grouping.id)};
    std::map<SystemKind, char> failed;  // propagate failures across SFs
    for (idx_t sf : scale_factors) {
      tpch::LineitemGenerator gen(static_cast<double>(sf));
      for (auto system : systems) {
        QueryResult result;
        auto it = failed.find(system);
        if (it != failed.end()) {
          result.tag = it->second;
          result.skipped = true;
        } else {
          result = RunGroupingQuery(system, gen, grouping, wide, options);
          if (!result.ok()) {
            failed[system] = result.tag;
          }
        }
        results[sf][system].push_back(result);
        cells.push_back(result.Cell());
      }
    }
    PrintRow(cells, widths);
    std::fflush(stdout);
  }
  PrintRule(widths);

  std::vector<std::string> geo = {"geomean"};
  for (idx_t sf : scale_factors) {
    for (auto system : systems) {
      geo.push_back(NormalizedGeoMeanCell(results[sf][system],
                                          results[sf][SystemKind::kRobust]));
    }
  }
  PrintRow(geo, widths);
  PrintRule(widths);
  std::printf("\ngeomean row: per-SF geometric mean of execution times "
              "normalized to the robust system\n(paper Section VIII: "
              "\"this weighs each query fairly\").\n");
  return 0;
}

}  // namespace bench
}  // namespace ssagg

#endif  // SSAGG_BENCH_TABLE_MATRIX_H_
