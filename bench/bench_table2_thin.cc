// Reproduces Table II: execution times of the THIN variant of all 13
// groupings (only the group columns are selected) at scale factors 2, 8,
// 32, and 128, across the four system models, plus the per-scale-factor
// geometric mean normalized to the robust system.
//
// Expected shape (paper Section VIII, "Thin Groupings"): all systems are
// comparable while intermediates fit in memory; at the largest scale factor
// the switch-to-external model falls off a cliff or times out, the
// in-memory-only model aborts, and the robust system completes everything.

#include "table_matrix.h"

int main() {
  return ssagg::bench::RunTableMatrix(
      "Table II: thin groupings (SELECT group columns ... GROUP BY ...)",
      /*wide=*/false);
}
