// Reproduces Figure 5: execution times for the THIN variant of groupings
// 3, 6, and 13 at scale factors 1 through 128 (the paper plots these
// log-log). One series per system model; 'A' marks aborted queries and 'T'
// timed-out ones, exactly like the paper's figure annotations.

#include "scaling_figure.h"

int main() {
  return ssagg::bench::RunScalingFigure(
      "bench_fig5_thin_scaling",
      "Figure 5: thin-variant scaling of groupings 3, 6, 13 (SF 1..128)",
      /*wide=*/false);
}
