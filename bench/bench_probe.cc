// Micro-benchmark for the grouped-aggregate probe pipeline: drives
// GroupedAggregateHashTable::AddChunk directly (no operator, no TPC-H data)
// so the measured loop is find-or-create-group plus the count update and
// nothing else. Two key distributions:
//
//   dense   keys uniform in [0, G)           -- the classic grouping shape
//   sparse  G distinct random 64-bit keys    -- no locality in key values
//
// crossed with group counts 10 .. 10M, each run once with the scalar
// row-at-a-time reference probe and once with the vectorized round-based
// pipeline. The small group counts stay in L1/L2; from ~1M groups the
// pointer table and the materialized rows exceed the last-level cache and
// every probe is a memory stall — the regime the prefetch + selection-vector
// pipeline targets.
//
// Prints rows/sec plus the pipeline counters and writes
// results/bench_probe.json (relative to the working directory).
//
// Env: SSAGG_BENCH_MAX_GROUPS caps the group-count axis (default 10M),
// SSAGG_BENCH_TMPDIR overrides the buffer-manager temp dir.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/file_system.h"
#include "harness_util.h"

using namespace ssagg;         // NOLINT(build/namespaces)
using namespace ssagg::bench;  // NOLINT(build/namespaces)

namespace {

struct RunResult {
  double seconds = 0;
  double rows_per_sec = 0;
  idx_t groups = 0;
  GroupedAggregateHashTable::Stats stats;
};

/// One timed build: aggregates `keys` (count(*) per key) into a fresh
/// resizable table. The timed region is the AddChunk loop only.
RunResult RunProbe(const std::vector<int64_t> &keys, bool vectorized,
                   const std::string &temp_dir) {
  // Keys + hash column + count state: 32 B/row; size the limit so even the
  // 10M-group run never spills (spill I/O would swamp the probe signal).
  BufferManager bm(temp_dir, 4096ULL << 20);
  GroupedAggregateHashTable::Config config;
  config.capacity = 1ULL << 14;  // grows by doubling: exercises Resize
  config.radix_bits = 4;         // exercises the partition-aware append
  config.resizable = true;
  config.vectorized_probe = vectorized;
  auto ht_res = GroupedAggregateHashTable::Create(
      bm, {LogicalTypeId::kInt64}, {0},
      {{AggregateKind::kCountStar, kInvalidIndex}}, config);
  if (!ht_res.ok()) {
    SSAGG_LOG_ERROR("create failed: %s",
                    ht_res.status().ToString().c_str());
    std::exit(1);
  }
  auto ht = ht_res.MoveValue();

  DataChunk input({LogicalTypeId::kInt64});
  auto start = std::chrono::steady_clock::now();
  for (idx_t offset = 0; offset < keys.size(); offset += kVectorSize) {
    idx_t count = std::min<idx_t>(kVectorSize, keys.size() - offset);
    std::memcpy(input.column(0).data(), keys.data() + offset,
                count * sizeof(int64_t));
    input.SetCount(count);
    Status status = ht->AddChunk(input);
    if (!status.ok()) {
      SSAGG_LOG_ERROR("AddChunk failed: %s", status.ToString().c_str());
      std::exit(1);
    }
  }
  auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.rows_per_sec =
      result.seconds > 0 ? static_cast<double>(keys.size()) / result.seconds
                         : 0;
  result.groups = ht->Count();
  result.stats = ht->stats();
  return result;
}

/// Deterministic key stream: dense draws uniformly from [0, groups);
/// sparse draws from `groups` distinct random 64-bit values.
std::vector<int64_t> MakeKeys(bool sparse, idx_t groups, idx_t rows) {
  RandomEngine rng(0x5eedULL + groups * 2 + (sparse ? 1 : 0));
  std::vector<int64_t> keyspace;
  if (sparse) {
    keyspace.reserve(groups);
    for (idx_t i = 0; i < groups; i++) {
      keyspace.push_back(static_cast<int64_t>(rng.NextUint64()));
    }
  }
  std::vector<int64_t> keys;
  keys.reserve(rows);
  for (idx_t i = 0; i < rows; i++) {
    idx_t g = rng.NextRange(groups);
    keys.push_back(sparse ? keyspace[g] : static_cast<int64_t>(g));
  }
  return keys;
}

idx_t EnvIdx(const char *name, idx_t fallback) {
  const char *value = std::getenv(name);
  return value != nullptr ? static_cast<idx_t>(std::strtoull(value, nullptr,
                                                             10))
                          : fallback;
}

std::string Fmt(const char *format, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

struct ConfigRecord {
  const char *distribution;
  idx_t groups;
  idx_t rows;
  RunResult scalar;
  RunResult vectorized;
};

Json RunJson(const RunResult &r) {
  const auto &s = r.stats;
  Json object = Json::Object();
  object.Set("seconds", Json(r.seconds));
  object.Set("rows_per_sec", Json(r.rows_per_sec));
  object.Set("groups", Json(static_cast<uint64_t>(r.groups)));
  object.Set("probe_steps", Json(s.probe_steps));
  object.Set("probe_rounds", Json(s.probe_rounds));
  object.Set("prefetches", Json(s.prefetches));
  object.Set("key_compares", Json(s.key_compares));
  object.Set("key_compare_misses", Json(s.key_compare_misses));
  object.Set("vectorized_compares", Json(s.vectorized_compares));
  object.Set("scalar_compares", Json(s.scalar_compares));
  object.Set("inserts", Json(s.inserts));
  object.Set("resizes", Json(s.resizes));
  return object;
}

}  // namespace

int main() {
  idx_t max_groups = EnvIdx("SSAGG_BENCH_MAX_GROUPS", 10'000'000);
  const char *tmp_env = std::getenv("SSAGG_BENCH_TMPDIR");
  std::string temp_dir =
      tmp_env != nullptr ? std::string(tmp_env) : "/tmp/ssagg_bench_probe";
  (void)FileSystem::Default().CreateDirectories(temp_dir);

  std::vector<idx_t> group_counts = {10, 1'000, 100'000, 1'000'000,
                                     10'000'000};
  std::printf("Probe pipeline micro-benchmark: scalar vs vectorized "
              "find-or-create-groups\n(resizable table, radix_bits=4, "
              "count(*) per int64 key)\n\n");
  std::vector<int> widths = {7, 9, 9, 11, 11, 9, 8, 12};
  PrintRule(widths);
  PrintRow({"dist", "groups", "rows M", "scalar M/s", "vector M/s", "speedup",
            "rounds", "prefetches"},
           widths);
  PrintRule(widths);

  std::vector<ConfigRecord> records;
  for (bool sparse : {false, true}) {
    for (idx_t groups : group_counts) {
      if (groups > max_groups) {
        continue;
      }
      idx_t rows = std::max<idx_t>(idx_t(1) << 22, 2 * groups);
      auto keys = MakeKeys(sparse, groups, rows);
      ConfigRecord record;
      record.distribution = sparse ? "sparse" : "dense";
      record.groups = groups;
      record.rows = rows;
      record.scalar = RunProbe(keys, /*vectorized=*/false, temp_dir);
      record.vectorized = RunProbe(keys, /*vectorized=*/true, temp_dir);
      records.push_back(record);

      double speedup = record.scalar.seconds > 0
                           ? record.vectorized.rows_per_sec /
                                 record.scalar.rows_per_sec
                           : 0;
      PrintRow({record.distribution, std::to_string(groups),
                Fmt("%.1f", static_cast<double>(rows) / 1e6),
                Fmt("%.1f", record.scalar.rows_per_sec / 1e6),
                Fmt("%.1f", record.vectorized.rows_per_sec / 1e6),
                Fmt("%.2fx", speedup),
                std::to_string(record.vectorized.stats.probe_rounds),
                std::to_string(record.vectorized.stats.prefetches)},
               widths);
    }
  }
  PrintRule(widths);
  std::printf("\nrounds/prefetches are the vectorized run's counters; the "
              "scalar path reports\nscalar_compares only (see the JSON for "
              "every counter of both runs).\n");

  Json configs = Json::Array();
  for (const auto &r : records) {
    double speedup =
        r.scalar.rows_per_sec > 0
            ? r.vectorized.rows_per_sec / r.scalar.rows_per_sec
            : 0;
    Json config = Json::Object();
    config.Set("distribution", Json(r.distribution));
    config.Set("groups", Json(static_cast<uint64_t>(r.groups)));
    config.Set("rows", Json(static_cast<uint64_t>(r.rows)));
    config.Set("speedup", Json(speedup));
    config.Set("scalar", RunJson(r.scalar));
    config.Set("vectorized", RunJson(r.vectorized));
    configs.Push(std::move(config));
  }
  Json payload = Json::Object();
  payload.Set("vector_size", Json(static_cast<uint64_t>(kVectorSize)));
  payload.Set("configs", std::move(configs));
  return WriteResultsJson("bench_probe", BenchOptions::FromEnv(),
                          std::move(payload))
                 .empty()
             ? 1
             : 0;
}
