// Reproduces Figure 1: the "performance cliff" motivation plot. Runtime of
// the wide variant of grouping 13 (all-unique groups) as the input grows
// past a fixed memory limit, for three strategies:
//
//   - in-memory only            (aborts at the limit)
//   - switch-to-external        (sharp jump at the limit: the cliff)
//   - robust external (ours)    (graceful degradation)
//
// The scale-factor steps are denser than Figure 5/6 so the crossover is
// visible; the "x mem" column shows the ratio of intermediate size to the
// memory limit (the cliff happens as it crosses 1).

#include <cstdio>

#include "harness_util.h"

using namespace ssagg;         // NOLINT(build/namespaces)
using namespace ssagg::bench;  // NOLINT(build/namespaces)

int main() {
  BenchOptions options = BenchOptions::FromEnv();
  options.memory_limit = std::min<idx_t>(options.memory_limit, 96ULL << 20);
  const auto &grouping = tpch::TableIGroupings()[12];  // grouping 13
  std::vector<idx_t> scale_factors;
  for (idx_t sf : {idx_t(2), idx_t(4), idx_t(6), idx_t(8), idx_t(10),
                   idx_t(12), idx_t(16), idx_t(24), idx_t(32), idx_t(48)}) {
    if (sf <= options.scale_cap) {
      scale_factors.push_back(sf);
    }
  }

  std::printf("Figure 1: the performance cliff (wide grouping 13, memory "
              "limit %s, threads=%llu)\n\n",
              FormatBytes(options.memory_limit).c_str(),
              static_cast<unsigned long long>(options.threads));
  std::vector<int> widths = {4, 10, 7, 10, 10, 10};
  PrintRule(widths);
  PrintRow({"SF", "rows", "x mem", "in-memory", "switching", "robust"},
           widths);
  PrintRule(widths);

  const SystemKind strategies[3] = {SystemKind::kUmbra, SystemKind::kHyPer,
                                    SystemKind::kRobust};
  char failed[3] = {0, 0, 0};
  Json points = Json::Array();
  for (idx_t sf : scale_factors) {
    tpch::LineitemGenerator gen(static_cast<double>(sf));
    std::vector<std::string> cells = {std::to_string(sf),
                                      std::to_string(gen.RowCount())};
    std::string ratio = "?";
    QueryResult results[3];
    for (int s = 0; s < 3; s++) {
      if (failed[s]) {
        results[s].tag = failed[s];
        results[s].skipped = true;
        continue;
      }
      results[s] = RunGroupingQuery(strategies[s], gen, grouping,
                                    /*wide=*/true, options);
      if (!results[s].ok() && results[s].tag == 'A') {
        failed[s] = results[s].tag;
      }
      if (strategies[s] == SystemKind::kRobust && results[s].ok()) {
        // intermediate footprint ~ peak temp + resident temporary bytes.
        double x = static_cast<double>(results[s].snapshot.temp_file_peak +
                                       options.memory_limit) /
                   static_cast<double>(options.memory_limit);
        char buffer[16];
        std::snprintf(buffer, sizeof(buffer), "%.1f",
                      results[s].snapshot.temp_file_peak > 0 ? x : 0.5);
        ratio = buffer;
      }
    }
    cells.push_back(ratio);
    for (int s = 0; s < 3; s++) {
      cells.push_back(results[s].Cell());
    }
    PrintRow(cells, widths);
    std::fflush(stdout);

    Json point = Json::Object();
    point.Set("sf", Json(static_cast<uint64_t>(sf)));
    point.Set("rows", Json(static_cast<uint64_t>(gen.RowCount())));
    Json systems = Json::Object();
    for (int s = 0; s < 3; s++) {
      systems.Set(SystemShortName(strategies[s]), results[s].ToJson());
    }
    point.Set("systems", std::move(systems));
    points.Push(std::move(point));
  }
  PrintRule(widths);
  std::printf("\n'x mem' > 1 means the intermediates exceeded the limit and "
              "pages spilled. Expected\nshape: in-memory aborts there, "
              "switching jumps discontinuously, robust degrades\n"
              "gracefully (paper Figure 1).\n");
  Json payload = Json::Object();
  payload.Set("grouping", Json(grouping.Name()));
  payload.Set("wide", Json(true));
  payload.Set("points", std::move(points));
  WriteResultsJson("bench_fig1_cliff", options, std::move(payload));
  return 0;
}
